/**
 * @file
 * Instruction-level semantics of the interpreter: arithmetic and
 * comparison ops (parameterized), stack manipulation, indirection,
 * field access, and error traps.
 */

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "common/logging.hh"
#include "machine/machine.hh"
#include "program/loader.hh"

namespace fpc
{
namespace
{

/** Run a single tiny procedure body and return the machine. */
struct MiniRig
{
    SystemLayout layout;
    Memory mem{SystemLayout().memWords};
    LoadedImage image;
    std::unique_ptr<Machine> machine;

    MiniRig(const std::function<void(ProcBuilder &)> &body,
            std::vector<Word> args = {}, unsigned num_vars = 4,
            Impl impl = Impl::Mesa)
    {
        ModuleBuilder b("M");
        b.globals(4, {100, 200});
        auto &main = b.proc("main", args.size(), num_vars);
        body(main);
        Loader loader{layout, SizeClasses::standard()};
        loader.add(b.build());
        image = loader.load(mem, LinkPlan{});
        MachineConfig config;
        config.impl = impl;
        machine = std::make_unique<Machine>(mem, image, config);
        machine->start("M", "main", args);
    }

    RunResult
    run()
    {
        return machine->run();
    }
};

// ---------------------------------------------------------------------
// Arithmetic & comparison, parameterized
// ---------------------------------------------------------------------

struct BinCase
{
    isa::Op op;
    Word a, b, expect;
};

class BinaryOps : public testing::TestWithParam<BinCase>
{};

TEST_P(BinaryOps, Computes)
{
    const BinCase c = GetParam();
    MiniRig rig([&](ProcBuilder &pb) {
        pb.loadLocal(0).loadLocal(1).op(c.op).ret();
    },
                {c.a, c.b});
    ASSERT_EQ(rig.run().reason, StopReason::TopReturn);
    EXPECT_EQ(rig.machine->popValue(), c.expect);
}

constexpr Word
w(int v)
{
    return static_cast<Word>(v);
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, BinaryOps,
    testing::Values(
        BinCase{isa::Op::ADD, 3, 4, 7},
        BinCase{isa::Op::ADD, 0xFFFF, 1, 0},     // wraps
        BinCase{isa::Op::SUB, 3, 5, w(-2)},
        BinCase{isa::Op::MUL, 300, 300, w(90000 & 0xFFFF)},
        BinCase{isa::Op::MUL, w(-3), 5, w(-15)},
        BinCase{isa::Op::DIV, 17, 5, 3},
        BinCase{isa::Op::DIV, w(-17), 5, w(-3)}, // truncates
        BinCase{isa::Op::MOD, 17, 5, 2},
        BinCase{isa::Op::MOD, w(-17), 5, w(-2)},
        BinCase{isa::Op::AND, 0xF0F0, 0xFF00, 0xF000},
        BinCase{isa::Op::IOR, 0xF0F0, 0x0F00, 0xFFF0},
        BinCase{isa::Op::XOR, 0xFFFF, 0x0F0F, 0xF0F0},
        BinCase{isa::Op::SHL, 1, 4, 16},
        BinCase{isa::Op::SHL, 1, 16, 0},  // full shift-out
        BinCase{isa::Op::SHR, 0x8000, 15, 1},
        BinCase{isa::Op::SHR, 0x8000, 16, 0}));

INSTANTIATE_TEST_SUITE_P(
    Comparisons, BinaryOps,
    testing::Values(
        BinCase{isa::Op::LT, 3, 4, 1}, BinCase{isa::Op::LT, 4, 3, 0},
        BinCase{isa::Op::LT, w(-1), 0, 1}, // signed compare
        BinCase{isa::Op::LE, 4, 4, 1}, BinCase{isa::Op::LE, 5, 4, 0},
        BinCase{isa::Op::EQ, 7, 7, 1}, BinCase{isa::Op::EQ, 7, 8, 0},
        BinCase{isa::Op::NE, 7, 8, 1}, BinCase{isa::Op::NE, 7, 7, 0},
        BinCase{isa::Op::GE, 4, 4, 1}, BinCase{isa::Op::GE, 3, 4, 0},
        BinCase{isa::Op::GT, 5, 4, 1},
        BinCase{isa::Op::GT, 0, w(-1), 1}));

TEST(UnaryOps, NegNotBang)
{
    MiniRig neg([](ProcBuilder &pb) { pb.loadLocal(0).op(isa::Op::NEG).ret(); },
                {5});
    neg.run();
    EXPECT_EQ(neg.machine->popValue(), w(-5));

    MiniRig inv([](ProcBuilder &pb) { pb.loadLocal(0).op(isa::Op::NOT).ret(); },
                {0x00FF});
    inv.run();
    EXPECT_EQ(inv.machine->popValue(), 0xFF00);
}

// ---------------------------------------------------------------------
// Stack manipulation
// ---------------------------------------------------------------------

TEST(StackOps, DupDropExch)
{
    MiniRig rig([](ProcBuilder &pb) {
        pb.loadImm(1).loadImm(2);    // [1 2]
        pb.op(isa::Op::EXCH);        // [2 1]
        pb.op(isa::Op::DUP);         // [2 1 1]
        pb.op(isa::Op::ADD);         // [2 2]
        pb.op(isa::Op::DROP);        // [2]
        pb.ret();
    });
    rig.run();
    EXPECT_EQ(rig.machine->popValue(), 2);
}

TEST(StackOps, OverflowTraps)
{
    setQuiet(true);
    MiniRig rig([](ProcBuilder &pb) {
        for (int i = 0; i < 20; ++i)
            pb.loadImm(1);
        pb.ret();
    });
    const RunResult result = rig.run();
    EXPECT_EQ(result.reason, StopReason::Error);
    EXPECT_NE(result.message.find("overflow"), std::string::npos);
    setQuiet(false);
}

TEST(StackOps, UnderflowTraps)
{
    setQuiet(true);
    MiniRig rig([](ProcBuilder &pb) { pb.op(isa::Op::DROP).ret(); });
    EXPECT_EQ(rig.run().reason, StopReason::Error);
    setQuiet(false);
}

// ---------------------------------------------------------------------
// Indirection, fields, pointers
// ---------------------------------------------------------------------

TEST(Indirection, ReadWriteThroughPointers)
{
    MiniRig rig([](ProcBuilder &pb) {
        // locals: 0 = scratch; store 77 via its address, read back.
        pb.loadImm(77);
        pb.loadLocalAddr(0);
        pb.op(isa::Op::WR);
        pb.loadLocalAddr(0);
        pb.op(isa::Op::RD);
        pb.ret();
    });
    rig.run();
    EXPECT_EQ(rig.machine->popValue(), 77);
}

TEST(Indirection, FieldAccess)
{
    MiniRig rig([](ProcBuilder &pb) {
        // Write 9 to global[1] via WRITEF on the gf address, then
        // read it back with READF. Globals start at gf+1.
        pb.loadImm(9);
        pb.loadImm(0); // replaced below: address comes from arg 0
        pb.op(isa::Op::DROP);
        pb.loadLocal(0);
        pb.op(isa::Op::WRITEF, 2); // mem[gf + 2] = 9 (global[1])
        pb.loadLocal(0);
        pb.op(isa::Op::READF, 2);
        pb.ret();
    },
                {0} /* patched below */);
    // Restart with the actual gf address as the argument.
    rig.machine->reset();
    const Word gf = static_cast<Word>(rig.image.gfAddr("M"));
    rig.machine->start("M", "main", std::array<Word, 1>{gf});
    rig.run();
    EXPECT_EQ(rig.machine->popValue(), 9);
    EXPECT_EQ(rig.mem.peek(rig.image.gfAddr("M") + 2), 9);
}

TEST(Indirection, GlobalsReadWrite)
{
    MiniRig rig([](ProcBuilder &pb) {
        pb.loadGlobal(0).loadGlobal(1).op(isa::Op::ADD);
        pb.storeGlobal(2);
        pb.loadGlobal(2).ret();
    });
    rig.run();
    EXPECT_EQ(rig.machine->popValue(), 300);
    EXPECT_EQ(rig.mem.peek(rig.image.gfAddr("M") + 3), 300);
}

// ---------------------------------------------------------------------
// Error traps
// ---------------------------------------------------------------------

TEST(Traps, DivideByZeroStopsWithoutHandler)
{
    setQuiet(true);
    MiniRig rig([](ProcBuilder &pb) {
        pb.loadImm(1).loadImm(0).op(isa::Op::DIV).ret();
    });
    const RunResult result = rig.run();
    EXPECT_EQ(result.reason, StopReason::Error);
    EXPECT_NE(result.message.find("zero"), std::string::npos);
    setQuiet(false);
}

TEST(Traps, IllegalOpcodeStops)
{
    setQuiet(true);
    MiniRig rig([](ProcBuilder &pb) {
        pb.op(isa::Op::NOOP).ret();
    });
    // Patch a hole opcode into the body.
    const PlacedProc &pp = rig.image.module("M").procs[0];
    rig.mem.pokeByte(pp.prologueAddr + pp.prologueBytes, 0xFF);
    const RunResult result = rig.run();
    EXPECT_EQ(result.reason, StopReason::Error);
    EXPECT_NE(result.message.find("illegal"), std::string::npos);
    setQuiet(false);
}

TEST(Traps, BrkStopsOrRoutesToHandler)
{
    setQuiet(true);
    MiniRig rig([](ProcBuilder &pb) { pb.op(isa::Op::BRK).ret(); });
    EXPECT_EQ(rig.run().reason, StopReason::Error);
    setQuiet(false);
}

TEST(Traps, YieldWithoutSchedulerStops)
{
    setQuiet(true);
    MiniRig rig([](ProcBuilder &pb) { pb.op(isa::Op::YIELD).ret(); });
    const RunResult result = rig.run();
    EXPECT_EQ(result.reason, StopReason::Error);
    EXPECT_NE(result.message.find("scheduler"), std::string::npos);
    setQuiet(false);
}

TEST(Traps, StepLimitStops)
{
    MiniRig rig([](ProcBuilder &pb) {
        auto loop = pb.newLabel();
        pb.label(loop).jump(loop); // infinite
    });
    rig.machine->reset();
    // Rebuild with a small budget.
    MachineConfig config;
    config.maxSteps = 1000;
    Machine machine(rig.mem, rig.image, config);
    machine.start("M", "main", {});
    EXPECT_EQ(machine.run().reason, StopReason::StepLimit);
    EXPECT_EQ(machine.stats().steps, 1000u);
}

// ---------------------------------------------------------------------
// OUT and output channel
// ---------------------------------------------------------------------

TEST(Output, CollectsWordsInOrder)
{
    MiniRig rig([](ProcBuilder &pb) {
        for (Word v : {Word{3}, Word{1}, Word{4}})
            pb.loadImm(v).op(isa::Op::OUT);
        pb.loadImm(0).ret();
    });
    rig.run();
    EXPECT_EQ(rig.machine->output(), (std::vector<Word>{3, 1, 4}));
}

} // namespace
} // namespace fpc
