/**
 * @file
 * Transfer-machinery tests: the IFU return stack (hits, spills,
 * flushes), register-bank behaviour (renaming, overflow, underflow,
 * diversion, §7.4 flagged frames), retained frames across returns,
 * coroutine/process disciplines, and the exact reference counts the
 * paper quotes.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "machine/machine.hh"
#include "workload/trace.hh"

namespace fpc
{
namespace
{

MachineConfig
banked(unsigned banks = 4, unsigned ret_depth = 8)
{
    MachineConfig config;
    config.impl = Impl::Banked;
    config.numBanks = banks;
    config.returnStackDepth = ret_depth;
    return config;
}

// ---------------------------------------------------------------------
// Return stack
// ---------------------------------------------------------------------

TEST(ReturnStack, HitsOnLifoPattern)
{
    MachineConfig config;
    config.impl = Impl::Ifu;
    TraceRunner runner(config);
    for (int i = 0; i < 100; ++i) {
        runner.call(0);
        runner.ret();
    }
    const MachineStats &s = runner.machine().stats();
    EXPECT_EQ(s.returnStackHits, 100u);
    EXPECT_EQ(s.returnStackMisses, 0u);
    EXPECT_EQ(s.returnStackSpills, 0u);
}

TEST(ReturnStack, SpillsOldestOnOverflowAndStillReturns)
{
    MachineConfig config;
    config.impl = Impl::Ifu;
    config.returnStackDepth = 4;
    TraceRunner runner(config);
    // Descend 10 deep: 6 spills (the first 4 pushes fit).
    for (int i = 0; i < 10; ++i)
        runner.call(0);
    EXPECT_EQ(runner.machine().stats().returnStackSpills, 6u);
    EXPECT_EQ(runner.machine().returnStackDepth(), 4u);

    // Unwind all 10: 4 hits then 6 general-path returns that follow
    // the links the spills materialized.
    for (int i = 0; i < 10; ++i)
        runner.ret();
    const MachineStats &s = runner.machine().stats();
    EXPECT_EQ(s.returnStackHits, 4u);
    EXPECT_EQ(s.returnStackMisses, 6u);
    EXPECT_EQ(runner.depth(), 0u);
}

TEST(ReturnStack, CoroutineXferFlushesWholeStack)
{
    MachineConfig config;
    config.impl = Impl::Ifu;
    TraceRunner runner(config, FrameSizeDist::mesa(), 2);
    runner.call(0);
    runner.call(1);
    EXPECT_EQ(runner.machine().returnStackDepth(), 2u);
    runner.switchChain();
    EXPECT_EQ(runner.machine().returnStackDepth(), 0u);
    EXPECT_EQ(runner.machine().stats().returnStackFlushes, 1u);
    EXPECT_EQ(runner.machine().stats().returnStackFlushedEntries, 2u);
}

TEST(ReturnStack, FlushedLinksSurviveRoundTrip)
{
    // Build a chain, flush it via a coroutine round trip, and verify
    // the unwinding still works purely from storage.
    MachineConfig config;
    config.impl = Impl::Ifu;
    TraceRunner runner(config, FrameSizeDist::mesa(), 2);
    for (int i = 0; i < 5; ++i)
        runner.call(i);
    runner.switchChain(); // flush
    runner.switchChain(); // second chain -> back is chain 0? (round robin of 2)
    for (int i = 0; i < 5; ++i)
        runner.ret();
    EXPECT_EQ(runner.depth(), 0u);
    EXPECT_EQ(runner.machine().stats().returnStackMisses, 5u);
}

// ---------------------------------------------------------------------
// Register banks
// ---------------------------------------------------------------------

TEST(Banks, RenamePassesArgumentsForFree)
{
    TraceRunner runner(banked());
    Machine &m = runner.machine();
    m.pushValue(41);
    m.pushValue(42);
    const CountT refs_before = runner.memory().totalRefs();
    m.callDescriptor(m.image().procDescriptor("T", "p1"),
                     XferKind::DirectCall);
    // The arguments appear as locals 0 and 1 of the new frame with no
    // data movement into storage (only LV/GFT/EV table refs happened).
    EXPECT_EQ(m.inspectVar(m.currentFrame(), 0), 41);
    EXPECT_EQ(m.inspectVar(m.currentFrame(), 1), 42);
    EXPECT_EQ(runner.memory().writes(AccessKind::Data), 0u);
    (void)refs_before;
}

TEST(Banks, CurrentFrameHasBankAfterCallAndReturn)
{
    TraceRunner runner(banked());
    Machine &m = runner.machine();
    runner.call(0);
    EXPECT_GE(m.currentLbank(), 0);
    EXPECT_EQ(m.banks().owner(m.currentLbank()), m.currentFrame());
    runner.ret();
    EXPECT_GE(m.currentLbank(), 0);
    EXPECT_EQ(m.banks().owner(m.currentLbank()), m.currentFrame());
}

TEST(Banks, OwnersAreDistinct)
{
    TraceRunner runner(banked(8));
    TraceConfig tc;
    tc.length = 5000;
    tc.seed = 2;
    runner.run(generateTrace(tc));

    const BankFile &banks = runner.machine().banks();
    std::set<Addr> owners;
    for (unsigned b = 0; b < banks.numBanks(); ++b) {
        if (banks.isFree(b))
            continue;
        EXPECT_TRUE(owners.insert(banks.owner(b)).second)
            << "two banks shadow one frame";
    }
}

TEST(Banks, OverflowWritesOldestBankOut)
{
    TraceRunner runner(banked(3)); // minimal: current + stack + 1
    Machine &m = runner.machine();
    runner.call(0);
    // Write a recognizable local in this frame.
    const Addr deep = m.currentFrame();
    m.pushValue(0xBEEF);
    m.callDescriptor(m.image().procDescriptor("T", "p1"),
                     XferKind::DirectCall); // arg in bank
    const Addr deeper = m.currentFrame();
    EXPECT_EQ(m.inspectVar(deeper, 0), 0xBEEF);
    // Keep calling until `deep`'s bank is evicted.
    runner.call(2);
    runner.call(3);
    EXPECT_GT(m.stats().bankOverflows, 0u);
    EXPECT_EQ(m.banks().bankOf(deep), -1);
    // The eviction flushed the dirty words: storage shows them.
    EXPECT_EQ(m.inspectVar(deeper, 0), 0xBEEF);
}

TEST(Banks, UnderflowReloadsOnReturn)
{
    TraceRunner runner(banked(3));
    for (int i = 0; i < 6; ++i)
        runner.call(i % 4);
    const CountT loads_before = runner.machine().stats().bankLoadWords;
    for (int i = 0; i < 6; ++i)
        runner.ret();
    const MachineStats &s = runner.machine().stats();
    EXPECT_GT(s.bankUnderflows, 0u);
    EXPECT_GT(s.bankLoadWords, loads_before);
    EXPECT_EQ(runner.depth(), 0u);
}

TEST(Banks, CoroutineXferKeepsBanks)
{
    // A coroutine XFER is not a process switch: suspended frames may
    // keep their banks (§6 only flushes the return stack).
    TraceRunner runner(banked(4), FrameSizeDist::mesa(), 3);
    Machine &m = runner.machine();
    runner.call(0);
    const Addr suspended = m.currentFrame();
    runner.switchChain();
    EXPECT_GE(m.banks().bankOf(suspended), 0);
}

TEST(Banks, ProcessSwitchFlushesAllBanks)
{
    // §7.1: "when life gets complicated because of a process switch
    // ... all the banks are flushed into storage."
    TraceRunner runner(banked(4), FrameSizeDist::mesa(), 2);
    Machine &m = runner.machine();
    runner.call(0);
    runner.call(1);
    const Word other = m.spawn("T", "p0");
    m.setScheduler([other](Machine &) { return other; });
    m.processSwitch();
    // Only the stack bank and (possibly) the destination's freshly
    // loaded bank remain.
    unsigned owned = 0;
    for (unsigned b = 0; b < m.banks().numBanks(); ++b)
        if (!m.banks().isFree(b))
            ++owned;
    EXPECT_LE(owned, 2u);
    EXPECT_GT(m.stats().bankFlushWords, 0u);
}

// ---------------------------------------------------------------------
// §7.4: pointers into frames
// ---------------------------------------------------------------------

TEST(Pointers, DivertFindsBankResidentWords)
{
    TraceRunner runner(banked(4));
    Machine &m = runner.machine();
    m.pushValue(7);
    m.callDescriptor(m.image().procDescriptor("T", "p2"),
                     XferKind::DirectCall);
    const Addr lf = m.currentFrame();
    ASSERT_GE(m.banks().bankOf(lf), 0);

    // A raw pointer read of the bank-resident local must divert to
    // the bank (the storage copy is stale).
    m.pushValue(static_cast<Word>(lf + frame::varsOffset));
    // Execute an RD by hand through the public API: inspectVar routes
    // through the bank, while raw memory shows the stale copy.
    EXPECT_EQ(m.inspectVar(lf, 0), 7);
    EXPECT_NE(m.memory().peek(lf + frame::varsOffset), 7);
    m.popValue();
}

TEST(Pointers, RetainedFrameSurvivesReturnWithContents)
{
    for (const Impl impl : {Impl::Mesa, Impl::Banked}) {
        MachineConfig config;
        config.impl = impl;
        TraceRunner runner(config);
        Machine &m = runner.machine();

        m.pushValue(55);
        m.callDescriptor(m.image().procDescriptor("T", "p3"),
                         XferKind::ExtCall);
        const Addr kept = m.currentFrame();
        m.setRetained(kept, true);
        m.doReturn();

        // The frame was not freed and still holds the argument.
        EXPECT_TRUE(m.heap().isRetained(kept));
        EXPECT_EQ(m.heap().stats().retainedSkips, 1u);
        EXPECT_EQ(m.memory().peek(kept + frame::varsOffset), 55)
            << implName(impl);
    }
}

// ---------------------------------------------------------------------
// Reference counts the paper quotes (steady state)
// ---------------------------------------------------------------------

TEST(RefCounts, MesaExternalCallAndReturn)
{
    MachineConfig config;
    config.impl = Impl::Mesa;
    TraceRunner runner(config);
    // Warm the free lists.
    for (int i = 0; i < 4; ++i) {
        runner.call(0);
        runner.ret();
    }
    runner.machine().resetStats();

    runner.call(0);
    // Descriptor call: 3 table refs (GFT, gf[0], EV — the LV read is
    // the EXTERNALCALL instruction's and does not occur on this
    // trace-driven path) + 3 allocation refs (Fig 2) + 3 state saves
    // (returnLink, globalFrame, caller PC). No arguments were passed.
    const auto &call_refs = runner.machine().stats().xferRefs
        [static_cast<unsigned>(XferKind::ExtCall)];
    EXPECT_EQ(call_refs.mean(), 9.0);

    runner.ret();
    // RETURN: returnLink read + 4 free refs + gf[0] + saved PC + the
    // destination's globalFrame word.
    const auto &ret_refs = runner.machine().stats().xferRefs
        [static_cast<unsigned>(XferKind::Return)];
    EXPECT_EQ(ret_refs.mean(), 8.0);
}

TEST(RefCounts, BankedDirectCallIsZeroRefs)
{
    TraceRunner runner(banked());
    // Warm up.
    for (int i = 0; i < 4; ++i) {
        runner.call(0);
        runner.ret();
    }
    runner.machine().resetStats();
    Machine &m = runner.machine();
    const CountT refs0 = runner.memory().totalRefs();
    const CountT table0 = runner.memory().reads(AccessKind::Table);
    const CountT heap0 = runner.memory().reads(AccessKind::Heap);
    const CountT state0 = runner.memory().writes(AccessKind::FrameState);

    // callDescriptor still resolves tables; the zero-ref path needs
    // the DFC entry, exercised via the interpreter in c1. Here we
    // check the frame/bank halves: no Data/FrameState/Heap traffic.
    m.pushValue(1);
    m.callDescriptor(m.image().procDescriptor("T", "p0"),
                     XferKind::ExtCall);
    const CountT table_refs =
        runner.memory().reads(AccessKind::Table) - table0;
    EXPECT_EQ(runner.memory().totalRefs() - refs0, table_refs);
    EXPECT_EQ(runner.memory().reads(AccessKind::Heap) - heap0, 0u);
    EXPECT_EQ(runner.memory().writes(AccessKind::FrameState) - state0,
              0u);

    m.popValue(); // leave the stack clean
    m.doReturn();
}

TEST(RefCounts, ReturnStackHitReturnFreesFrameOnly)
{
    MachineConfig config;
    config.impl = Impl::Ifu;
    TraceRunner runner(config);
    for (int i = 0; i < 4; ++i) {
        runner.call(0);
        runner.ret();
    }
    runner.machine().resetStats();

    runner.call(0);
    runner.ret();
    // I3 return with a stack hit: only the 4 free refs remain.
    const auto &ret_refs = runner.machine().stats().xferRefs
        [static_cast<unsigned>(XferKind::Return)];
    EXPECT_EQ(ret_refs.mean(), 4.0);
}

} // namespace
} // namespace fpc
