/**
 * @file
 * Assembler/builder tests: forward references, extern deduplication,
 * bounds validation, and the produced IR.
 */

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "common/logging.hh"

namespace fpc
{
namespace
{

TEST(Builder, ForwardLocalCallsResolve)
{
    ModuleBuilder b("M");
    auto &a = b.proc("a", 0, 1);
    a.callLocal("b"); // b not defined yet
    a.ret();
    auto &bb = b.proc("b", 0, 1);
    bb.loadImm(1).ret();

    const Module mod = b.build();
    ASSERT_EQ(mod.procs[0].code.size(), 2u);
    EXPECT_EQ(mod.procs[0].code[0].kind, AsmInst::Kind::LocalCall);
    EXPECT_EQ(mod.procs[0].code[0].a, 1); // resolved to proc index 1
}

TEST(Builder, UnknownLocalCallIsFatal)
{
    setQuiet(true);
    ModuleBuilder b("M");
    b.proc("a", 0, 1).callLocal("ghost").ret();
    EXPECT_THROW(b.build(), FatalError);
    setQuiet(false);
}

TEST(Builder, ExternRefsDeduplicate)
{
    ModuleBuilder b("M");
    const unsigned e1 = b.externRef("X", "f");
    const unsigned e2 = b.externRef("X", "f");
    const unsigned e3 = b.externRef("X", "g");
    const unsigned e4 = b.externRef("X", "f", 1); // other instance
    EXPECT_EQ(e1, e2);
    EXPECT_NE(e1, e3);
    EXPECT_NE(e1, e4);
    b.proc("m", 0, 1).callExtern(e1).ret();
    EXPECT_EQ(b.build().externs.size(), 3u);
}

TEST(Builder, LocalIndexBoundsChecked)
{
    setQuiet(true);
    ModuleBuilder b("M");
    auto &p = b.proc("p", 1, 2);
    EXPECT_NO_THROW(p.loadLocal(1));
    EXPECT_THROW(p.loadLocal(2), FatalError);
    EXPECT_THROW(p.storeLocal(5), FatalError);
    EXPECT_THROW(p.loadLocalAddr(2), FatalError);
    setQuiet(false);
}

TEST(Builder, ExternIdBoundsChecked)
{
    setQuiet(true);
    ModuleBuilder b("M");
    auto &p = b.proc("p", 0, 1);
    EXPECT_THROW(p.callExtern(0), FatalError); // none registered
    EXPECT_THROW(p.loadDescriptor(3), FatalError);
    setQuiet(false);
}

TEST(Builder, DuplicateProcNameRejected)
{
    setQuiet(true);
    ModuleBuilder b("M");
    b.proc("p", 0, 1).ret();
    EXPECT_THROW(b.proc("p", 0, 1), FatalError);
    setQuiet(false);
}

TEST(Builder, DoubleBuildRejected)
{
    setQuiet(true);
    ModuleBuilder b("M");
    b.proc("p", 0, 1).loadImm(0).ret();
    b.build();
    EXPECT_THROW(b.build(), FatalError);
    setQuiet(false);
}

TEST(Builder, LabelsAreScopedPerProc)
{
    ModuleBuilder b("M");
    auto &p1 = b.proc("p1", 0, 1);
    auto l1 = p1.newLabel();
    p1.jump(l1).label(l1).loadImm(0).ret();
    auto &p2 = b.proc("p2", 0, 1);
    auto l2 = p2.newLabel();
    EXPECT_EQ(l2.id, 0u); // fresh counter per proc
    p2.jump(l2).label(l2).loadImm(0).ret();
    const Module mod = b.build();
    EXPECT_EQ(mod.procs[0].numLabels, 1u);
    EXPECT_EQ(mod.procs[1].numLabels, 1u);
}

TEST(Builder, GlobalsAndExtraWordsRecorded)
{
    ModuleBuilder b("M");
    b.globals(3, {7, 8});
    auto &p = b.proc("p", 1, 2, 10);
    p.extraFrameWords(12);
    p.loadImm(0).ret();
    const Module mod = b.build();
    EXPECT_EQ(mod.numGlobals, 3u);
    EXPECT_EQ(mod.globalInit, (std::vector<Word>{7, 8}));
    EXPECT_EQ(mod.procs[0].extraWords, 12u);
    EXPECT_EQ(mod.procs[0].framePayloadWords(), 3u + 2 + 12);
}

TEST(Builder, ValidationCatchesBadModules)
{
    setQuiet(true);
    // More args than vars.
    ModuleBuilder b("M");
    b.proc("p", 3, 2).loadImm(0).ret();
    EXPECT_THROW(b.build(), FatalError);
    setQuiet(false);
}

} // namespace
} // namespace fpc
