/**
 * @file
 * Unit tests for the common substrate: formatting, bit fields,
 * logging and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/strfmt.hh"

namespace fpc
{
namespace
{

TEST(Strfmt, BasicSubstitution)
{
    EXPECT_EQ(strfmt("a={} b={}", 1, 2), "a=1 b=2");
    EXPECT_EQ(strfmt("no placeholders"), "no placeholders");
    EXPECT_EQ(strfmt("{}{}{}", "x", "y", "z"), "xyz");
    EXPECT_EQ(strfmt("hex {} str {}", 255, std::string("s")),
              "hex 255 str s");
}

TEST(Strfmt, SurplusPlaceholdersStayVerbatim)
{
    EXPECT_EQ(strfmt("a={} b={}", 1), "a=1 b={}");
}

TEST(Strfmt, SurplusArgumentsAreAppended)
{
    EXPECT_EQ(strfmt("a={}", 1, 2, 3), "a=1 2 3");
}

TEST(Bits, ExtractAndInsert)
{
    EXPECT_EQ(bits(0xABCD, 0, 4), 0xDu);
    EXPECT_EQ(bits(0xABCD, 4, 4), 0xCu);
    EXPECT_EQ(bits(0xABCD, 12, 4), 0xAu);
    EXPECT_EQ(bits(0xFFFF, 0, 16), 0xFFFFu);

    EXPECT_EQ(insertBits(0, 4, 4, 0xF), 0xF0u);
    EXPECT_EQ(insertBits(0xFFFF, 8, 4, 0), 0xF0FFu);
    // Field wider than value: excess masked.
    EXPECT_EQ(insertBits(0, 0, 4, 0x1F), 0xFu);
}

TEST(Bits, FitsChecks)
{
    EXPECT_TRUE(fitsUnsigned(255, 8));
    EXPECT_FALSE(fitsUnsigned(256, 8));
    EXPECT_TRUE(fitsSigned(127, 8));
    EXPECT_TRUE(fitsSigned(-128, 8));
    EXPECT_FALSE(fitsSigned(128, 8));
    EXPECT_FALSE(fitsSigned(-129, 8));
    EXPECT_TRUE(fitsSigned(-524288, 20));
    EXPECT_FALSE(fitsSigned(524288, 20));
}

TEST(Bits, CheckedFieldPanics)
{
    EXPECT_EQ(checkedField(1023, 10, "x"), 1023u);
    EXPECT_THROW(checkedField(1024, 10, "x"), PanicError);
}

TEST(Logging, PanicAndFatalThrow)
{
    setQuiet(true);
    EXPECT_THROW(panic("boom {}", 1), PanicError);
    EXPECT_THROW(fatal("user {}", "error"), FatalError);
    try {
        fatal("value = {}", 42);
    } catch (const FatalError &err) {
        EXPECT_STREQ(err.what(), "value = 42");
    }
    setQuiet(false);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123), c(124);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(123);
    for (int i = 0; i < 100; ++i)
        differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, UniformInRange)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniform(3, 7);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u); // all values hit
    EXPECT_EQ(rng.uniform(9, 9), 9u);
    EXPECT_THROW(rng.uniform(2, 1), PanicError);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(6);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniformReal();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(7);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, WeightedRespectsWeights)
{
    Rng rng(8);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.weighted(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
    EXPECT_THROW(rng.weighted({0.0, 0.0}), PanicError);
}

TEST(Rng, GeometricBounded)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LE(rng.geometric(0.9, 5), 5u);
    // p=0 never succeeds.
    EXPECT_EQ(rng.geometric(0.0, 10), 0u);
}

} // namespace
} // namespace fpc
