/**
 * @file
 * Unit tests for simulated storage and the cache timing model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "memory/cache.hh"
#include "memory/memory.hh"

namespace fpc
{
namespace
{

TEST(Memory, ReadWriteAndAccounting)
{
    Memory mem(1024);
    mem.write(10, 0xBEEF, AccessKind::Data);
    EXPECT_EQ(mem.read(10, AccessKind::Data), 0xBEEF);
    EXPECT_EQ(mem.reads(AccessKind::Data), 1u);
    EXPECT_EQ(mem.writes(AccessKind::Data), 1u);
    EXPECT_EQ(mem.totalRefs(), 2u);

    mem.read(10, AccessKind::Table);
    EXPECT_EQ(mem.reads(AccessKind::Table), 1u);
    EXPECT_EQ(mem.totalRefs(), 3u);

    mem.resetStats();
    EXPECT_EQ(mem.totalRefs(), 0u);
    EXPECT_EQ(mem.reads(AccessKind::Data), 0u);
    // Contents survive a stats reset.
    EXPECT_EQ(mem.peek(10), 0xBEEF);
}

TEST(Memory, PeekPokeUnaccounted)
{
    Memory mem(64);
    mem.poke(5, 77);
    EXPECT_EQ(mem.peek(5), 77);
    EXPECT_EQ(mem.totalRefs(), 0u);
}

TEST(Memory, ByteOrderBigEndianWithinWord)
{
    Memory mem(64);
    mem.poke(3, 0xAB12);
    EXPECT_EQ(mem.peekByte(6), 0xAB); // high byte first
    EXPECT_EQ(mem.peekByte(7), 0x12);

    mem.pokeByte(6, 0xCD);
    EXPECT_EQ(mem.peek(3), 0xCD12);
    mem.pokeByte(7, 0x34);
    EXPECT_EQ(mem.peek(3), 0xCD34);
}

TEST(Memory, CodeByteFetchCountsSeparately)
{
    Memory mem(64);
    mem.poke(0, 0x1234);
    EXPECT_EQ(mem.readByte(0), 0x12);
    EXPECT_EQ(mem.readByte(1), 0x34);
    EXPECT_EQ(mem.codeByteFetches(), 2u);
    EXPECT_EQ(mem.totalRefs(), 0u); // code bytes are not data refs
}

TEST(Memory, OutOfRangeIsFatal)
{
    setQuiet(true);
    Memory mem(16);
    EXPECT_THROW(mem.read(16, AccessKind::Data), FatalError);
    EXPECT_THROW(mem.write(100, 0, AccessKind::Data), FatalError);
    EXPECT_THROW(Memory(0), PanicError);
    setQuiet(false);
}

TEST(Cache, HitsAndMisses)
{
    LatencyModel lat;
    Cache cache({4, 1, 4}, lat); // 4 sets, direct-mapped, 4-word lines
    // First access: miss.
    EXPECT_EQ(cache.access(0, false), lat.cacheHitCycles + lat.memCycles);
    // Same line: hit.
    EXPECT_EQ(cache.access(3, false), lat.cacheHitCycles);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.5);
}

TEST(Cache, ConflictEviction)
{
    LatencyModel lat;
    Cache cache({4, 1, 4}, lat);
    cache.access(0, false);  // set 0
    cache.access(64, false); // also set 0 (64/4 = 16, 16 % 4 = 0)
    cache.access(0, false);  // evicted: miss again
    EXPECT_EQ(cache.misses(), 3u);
}

TEST(Cache, AssociativityAvoidsConflict)
{
    LatencyModel lat;
    Cache cache({4, 2, 4}, lat);
    cache.access(0, false);
    cache.access(64, false);
    cache.access(0, false); // both fit in the 2-way set
    cache.access(64, false);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 2u);
}

TEST(Cache, LruVictimChoice)
{
    LatencyModel lat;
    Cache cache({1, 2, 1}, lat); // 2 lines total, 1-word lines
    cache.access(0, false);
    cache.access(1, false);
    cache.access(0, false); // touch 0 again: 1 is now LRU
    cache.access(2, false); // evicts 1
    EXPECT_EQ(cache.access(0, false), lat.cacheHitCycles); // still in
}

TEST(Cache, DirtyWritebackCharged)
{
    LatencyModel lat;
    Cache cache({1, 1, 1}, lat); // one line
    cache.access(0, true);       // miss, dirty
    const unsigned cycles = cache.access(1, false); // evicts dirty 0
    EXPECT_EQ(cycles, lat.cacheHitCycles + 2 * lat.memCycles);
    EXPECT_EQ(cache.writebacks(), 1u);
    // Clean eviction costs only the fill.
    const unsigned clean = cache.access(2, false);
    EXPECT_EQ(clean, lat.cacheHitCycles + lat.memCycles);
}

TEST(Cache, ResetClearsEverything)
{
    LatencyModel lat;
    Cache cache({4, 2, 4}, lat);
    cache.access(0, true);
    cache.reset();
    EXPECT_EQ(cache.accesses(), 0u);
    EXPECT_EQ(cache.access(0, false),
              lat.cacheHitCycles + lat.memCycles); // cold again
}

TEST(Cache, BadGeometryRejected)
{
    setQuiet(true);
    LatencyModel lat;
    EXPECT_THROW(Cache({3, 1, 4}, lat), FatalError);  // non-pow2 sets
    EXPECT_THROW(Cache({4, 1, 3}, lat), FatalError);  // non-pow2 line
    EXPECT_THROW(Cache({0, 1, 4}, lat), PanicError);
    setQuiet(false);
}

/** Property: a repeated scan of a working set that fits is all hits
 *  after the first pass, regardless of geometry. */
class CacheSweep
    : public testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(CacheSweep, FittingWorkingSetConverges)
{
    const auto [sets, ways] = GetParam();
    LatencyModel lat;
    Cache cache({sets, ways, 4}, lat);
    const unsigned working_words = sets * ways * 4;
    for (Addr a = 0; a < working_words; ++a)
        cache.access(a, false);
    const CountT misses_after_fill = cache.misses();
    for (int pass = 0; pass < 3; ++pass)
        for (Addr a = 0; a < working_words; ++a)
            cache.access(a, false);
    EXPECT_EQ(cache.misses(), misses_after_fill);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    testing::Combine(testing::Values(4u, 16u, 64u),
                     testing::Values(1u, 2u, 4u)));

} // namespace
} // namespace fpc
