/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "stats/stats.hh"
#include "stats/table.hh"

namespace fpc::stats
{
namespace
{

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, Moments)
{
    Distribution d;
    EXPECT_EQ(d.mean(), 0.0);
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_NEAR(d.stddev(), 2.0, 1e-9);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
}

TEST(Distribution, WeightedSamples)
{
    Distribution d;
    d.sample(10.0, 3);
    d.sample(20.0, 1);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 12.5);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(2.0, 4); // buckets [0,2) [2,4) [4,6) [6,8)
    for (double v : {0.0, 1.9, 2.0, 5.0, 7.9, 8.0, 100.0, -1.0})
        h.sample(v);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflow(), 3u);
    EXPECT_EQ(h.count(), 8u);
}

TEST(Histogram, FractionAtOrBelow)
{
    Histogram h(1.0, 10);
    for (int i = 0; i < 10; ++i)
        h.sample(i + 0.5);
    EXPECT_NEAR(h.fractionAtOrBelow(4.0), 0.4, 1e-9);
    EXPECT_NEAR(h.fractionAtOrBelow(100.0), 1.0, 1e-9);
}

TEST(Histogram, PercentilesEmpty)
{
    const Histogram h(1.0, 10);
    EXPECT_EQ(h.p50(), 0.0);
    EXPECT_EQ(h.p90(), 0.0);
    EXPECT_EQ(h.p99(), 0.0);
}

TEST(Histogram, PercentilesSingleBucket)
{
    // One sample: every percentile is that sample (interpolation
    // within the bucket is clamped to the observed range).
    Histogram h(10.0, 4);
    h.sample(5.0);
    EXPECT_DOUBLE_EQ(h.p50(), 5.0);
    EXPECT_DOUBLE_EQ(h.p90(), 5.0);
    EXPECT_DOUBLE_EQ(h.p99(), 5.0);
}

TEST(Histogram, PercentilesInterpolate)
{
    Histogram h(1.0, 10);
    for (int i = 0; i < 10; ++i)
        h.sample(i + 0.5); // one sample per bucket
    EXPECT_NEAR(h.p50(), 5.0, 1e-9);
    EXPECT_NEAR(h.p90(), 9.0, 1e-9);
    // p99 lands 0.9 into the last bucket, clamped to the max seen.
    EXPECT_NEAR(h.p99(), 9.5, 1e-9);
    EXPECT_NEAR(h.percentile(0.0), 0.5, 1e-9); // clamped to min
}

TEST(Histogram, PercentilesAfterMerge)
{
    Histogram a(2.0, 4);
    Histogram b(2.0, 4);
    a.sample(1.0);
    a.sample(1.0);
    b.sample(3.0);
    b.sample(3.0);
    a.merge(b);
    EXPECT_NEAR(a.p50(), 2.0, 1e-9);
    EXPECT_NEAR(a.p99(), 3.0, 1e-9); // clamped to the merged max
}

TEST(Histogram, PercentileOfOverflowSamples)
{
    Histogram h(1.0, 2);
    h.sample(10.0); // overflow bucket
    EXPECT_DOUBLE_EQ(h.p50(), 10.0);
}

TEST(Histogram, PercentileEndpointsEmpty)
{
    const Histogram h(1.0, 4);
    EXPECT_EQ(h.percentile(0.0), 0.0);
    EXPECT_EQ(h.percentile(1.0), 0.0);
}

TEST(Histogram, PercentileEndpoints)
{
    Histogram h(1.0, 10);
    h.sample(0.25);
    h.sample(7.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.25); // p0 is the min seen
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 7.5);  // p100 is the max
    // Out-of-range p clamps to the endpoints.
    EXPECT_DOUBLE_EQ(h.percentile(-1.0), 0.25);
    EXPECT_DOUBLE_EQ(h.percentile(2.0), 7.5);
}

TEST(Histogram, PercentileAllOverflow)
{
    // Every sample lands past the bucketed range: the histogram only
    // knows the observed extrema, and the endpoints must report them
    // (p0 the min, everything else the max).
    Histogram h(1.0, 2);
    h.sample(50.0);
    h.sample(90.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 50.0);
    EXPECT_DOUBLE_EQ(h.p50(), 90.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 90.0);
}

TEST(Histogram, BadShapePanics)
{
    EXPECT_THROW(Histogram(0.0, 4), PanicError);
    EXPECT_THROW(Histogram(1.0, 0), PanicError);
}

TEST(Histogram, MergeShapeMismatchPanics)
{
    Histogram a(2.0, 4);
    Histogram wrong_count(2.0, 8);
    Histogram wrong_width(4.0, 4);
    EXPECT_THROW(a.merge(wrong_count), PanicError);
    EXPECT_THROW(a.merge(wrong_width), PanicError);

    // The message must name both shapes so the mismatch is debuggable.
    try {
        a.merge(wrong_width);
        FAIL() << "merge of mismatched shapes did not panic";
    } catch (const PanicError &err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find("2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("4"), std::string::npos) << msg;
        EXPECT_NE(msg.find("mismatch"), std::string::npos) << msg;
    }

    // Matching shapes still merge.
    Histogram b(2.0, 4);
    a.sample(1.0);
    b.sample(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
}

TEST(StatGroup, VisitRunsInRegistrationOrder)
{
    StatGroup group("visit");
    group.counter("c1", "first");
    group.distribution("d1");
    group.histogram("h1", 2.0, 4);
    group.counter("c2");

    std::vector<std::string> order;
    group.visit([&](const std::string &name, const std::string &desc,
                    const Counter *c, const Distribution *d,
                    const Histogram *h) {
        order.push_back(name);
        if (name == "c1") {
            EXPECT_EQ(desc, "first");
            EXPECT_NE(c, nullptr);
        }
        if (name == "d1")
            EXPECT_NE(d, nullptr);
        if (name == "h1")
            EXPECT_NE(h, nullptr);
        EXPECT_EQ((c != nullptr) + (d != nullptr) + (h != nullptr), 1);
    });
    EXPECT_EQ(order,
              (std::vector<std::string>{"c1", "d1", "h1", "c2"}));
}

TEST(StatGroup, RegisterFindAndDump)
{
    StatGroup group("test");
    Counter &c = group.counter("events", "number of events");
    Distribution &d = group.distribution("latency");
    Histogram &h = group.histogram("sizes", 4.0, 8);

    ++c;
    d.sample(3.0);
    h.sample(5.0);

    EXPECT_EQ(group.findCounter("events").value(), 1u);
    EXPECT_EQ(group.findDistribution("latency").count(), 1u);
    EXPECT_EQ(group.findHistogram("sizes").count(), 1u);
    EXPECT_TRUE(group.hasCounter("events"));
    EXPECT_FALSE(group.hasCounter("latency")); // wrong type
    EXPECT_THROW(group.findCounter("nope"), PanicError);
    EXPECT_THROW(group.counter("events"), PanicError); // duplicate

    std::ostringstream os;
    group.dump(os);
    EXPECT_NE(os.str().find("events = 1"), std::string::npos);
    EXPECT_NE(os.str().find("number of events"), std::string::npos);

    group.resetAll();
    EXPECT_EQ(group.findCounter("events").value(), 0u);
}

TEST(Table, AlignmentAndArity)
{
    Table t({"a", "bb"});
    t.row(1, "x");
    t.row("long-cell", 22);
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| long-cell | 22 |"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
    EXPECT_THROW(Table({}), PanicError);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(2.0, 0), "2");
    EXPECT_EQ(percent(0.9512), "95.1%");
    EXPECT_EQ(percent(1.0, 0), "100%");
}

} // namespace
} // namespace fpc::stats
