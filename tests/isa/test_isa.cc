/**
 * @file
 * ISA tests: opcode-table invariants, encode/decode round trips
 * (property-style over every opcode and operand range), compact-form
 * selection, and the disassembler.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "isa/decode.hh"
#include "isa/disasm.hh"

namespace fpc::isa
{
namespace
{

std::vector<std::uint8_t>
validOpcodes()
{
    std::vector<std::uint8_t> out;
    for (unsigned op = 0; op < 256; ++op)
        if (opcodeValid(op))
            out.push_back(static_cast<std::uint8_t>(op));
    return out;
}

TEST(OpTable, NamesAreUniqueAndNonEmpty)
{
    std::set<std::string> names;
    for (const std::uint8_t op : validOpcodes()) {
        const OpInfo &info = opInfo(op);
        ASSERT_NE(info.name, nullptr);
        EXPECT_TRUE(names.insert(info.name).second)
            << "duplicate mnemonic " << info.name;
    }
    EXPECT_GT(names.size(), 80u); // a rich one-byte-dominated set
}

TEST(OpTable, LengthsMatchOperandKind)
{
    for (const std::uint8_t op : validOpcodes()) {
        const OpInfo &info = opInfo(op);
        const unsigned len = instLength(op);
        switch (info.kind) {
          case OperandKind::None: EXPECT_EQ(len, 1u); break;
          case OperandKind::UByte:
          case OperandKind::SByte: EXPECT_EQ(len, 2u); break;
          case OperandKind::UWord:
          case OperandKind::SWord:
          case OperandKind::Rel20: EXPECT_EQ(len, 3u); break;
          case OperandKind::Code24: EXPECT_EQ(len, 4u); break;
          case OperandKind::Desc40: EXPECT_EQ(len, 6u); break;
          default: FAIL();
        }
    }
}

TEST(OpTable, CompactFamiliesEmbedOperands)
{
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(opInfo(static_cast<std::uint8_t>(
                             static_cast<int>(Op::LL0) + i))
                      .embedded,
                  i);
        EXPECT_EQ(opInfo(static_cast<std::uint8_t>(
                             static_cast<int>(Op::EFC0) + i))
                      .embedded,
                  i);
    }
    EXPECT_EQ(opInfo(Op::LIN1).embedded, 0xFFFF);
    EXPECT_EQ(opInfo(Op::J2).embedded, 2);
    EXPECT_EQ(opInfo(Op::J8).embedded, 8);
}

TEST(OpTable, IllegalOpcodesAreMarked)
{
    EXPECT_FALSE(opcodeValid(0x0F));
    EXPECT_FALSE(opcodeValid(0xFF));
    EXPECT_EQ(opInfo(std::uint8_t{0xFF}).cls, OpClass::Illegal);
}

/** Round-trip every opcode at several operand values. */
TEST(EncodeDecode, RoundTripAllOpcodes)
{
    for (const std::uint8_t raw : validOpcodes()) {
        const Op op = static_cast<Op>(raw);
        const OpInfo &info = opInfo(raw);

        std::vector<std::int32_t> operands;
        switch (info.kind) {
          case OperandKind::None: operands = {0}; break;
          case OperandKind::UByte: operands = {0, 1, 127, 255}; break;
          case OperandKind::SByte: operands = {-128, -1, 0, 127}; break;
          case OperandKind::UWord: operands = {0, 300, 65535}; break;
          case OperandKind::SWord:
            operands = {-32768, -1, 0, 32767};
            break;
          case OperandKind::Code24:
            operands = {0, 0x123456, 0xFFFFFF};
            break;
          case OperandKind::Rel20: {
            // The four high bits must match the opcode's embedding.
            const std::int32_t high = info.embedded;
            std::int32_t base = high << 16;
            if (base & 0x80000)
                base |= ~0xFFFFF; // sign-extend
            operands = {base, base + 1, base + 0xFFFF};
            break;
          }
          case OperandKind::Desc40: operands = {0, 0xABCDEF}; break;
          default: continue;
        }

        for (const std::int32_t operand : operands) {
            std::vector<std::uint8_t> bytes;
            const std::int32_t operand2 =
                info.kind == OperandKind::Desc40 ? 0x1234 : 0;
            encode(bytes, op, operand, operand2);
            ASSERT_EQ(bytes.size(), instLength(raw));

            const Inst inst = decodeAt(bytes, 0);
            EXPECT_EQ(inst.op, op);
            EXPECT_EQ(inst.cls, info.cls);
            EXPECT_EQ(inst.length, bytes.size());
            if (info.kind != OperandKind::None) {
                EXPECT_EQ(inst.operand, operand)
                    << info.name << " operand " << operand;
            } else {
                EXPECT_EQ(inst.operand, info.embedded);
            }
            if (info.kind == OperandKind::Desc40) {
                EXPECT_EQ(inst.operand2, operand2);
            }
        }
    }
}

TEST(EncodeDecode, OverflowingOperandsPanic)
{
    std::vector<std::uint8_t> bytes;
    EXPECT_THROW(encode(bytes, Op::LLB, 256), PanicError);
    EXPECT_THROW(encode(bytes, Op::JB, 200), PanicError);
    EXPECT_THROW(encode(bytes, Op::JB, -200), PanicError);
    EXPECT_THROW(encode(bytes, Op::DFC, 1 << 24), PanicError);
    EXPECT_THROW(encode(bytes, Op::SDFC0, 1 << 16), PanicError);
    // SDFC high bits must match the opcode.
    EXPECT_THROW(encode(bytes, Op::SDFC0, -1), PanicError);
    EXPECT_NO_THROW(encode(bytes, Op::SDFC15, -1));
}

TEST(EncodeDecode, Sdfc20BitSignedRange)
{
    // -1 encodes through SDFC15 (high bits 0xF).
    std::vector<std::uint8_t> bytes;
    encode(bytes, Op::SDFC15, -1);
    EXPECT_EQ(decodeAt(bytes, 0).operand, -1);

    bytes.clear();
    encode(bytes, Op::SDFC8, -524288); // most negative
    EXPECT_EQ(decodeAt(bytes, 0).operand, -524288);

    bytes.clear();
    encode(bytes, Op::SDFC7, 524287); // most positive
    EXPECT_EQ(decodeAt(bytes, 0).operand, 524287);
}

TEST(CompactForms, ShortestOpcodeChosen)
{
    EXPECT_EQ(loadLocalOp(0), Op::LL0);
    EXPECT_EQ(loadLocalOp(7), Op::LL7);
    EXPECT_EQ(loadLocalOp(8), Op::LLB);
    EXPECT_EQ(storeLocalOp(3), Op::SL3);
    EXPECT_EQ(storeLocalOp(4), Op::SLB);
    EXPECT_EQ(loadGlobalOp(2), Op::LG2);
    EXPECT_EQ(loadGlobalOp(9), Op::LGB);
    EXPECT_EQ(storeGlobalOp(1), Op::SG1);
    EXPECT_EQ(storeGlobalOp(2), Op::SGB);
    EXPECT_EQ(loadImmOp(0), Op::LI0);
    EXPECT_EQ(loadImmOp(6), Op::LI6);
    EXPECT_EQ(loadImmOp(7), Op::LIB);
    EXPECT_EQ(loadImmOp(0xFFFF), Op::LIN1);
    EXPECT_EQ(loadImmOp(256), Op::LIW);
    EXPECT_EQ(extCallOp(5), Op::EFC5);
    EXPECT_EQ(extCallOp(8), Op::EFCB);
    EXPECT_EQ(localCallOp(0), Op::LFC0);
    EXPECT_EQ(localCallOp(200), Op::LFCB);
}

TEST(Disasm, RendersOperands)
{
    std::vector<std::uint8_t> code;
    encode(code, Op::LL3);
    encode(code, Op::LLB, 12);
    encode(code, Op::LIW, 999);
    encode(code, Op::FCALL, 0x010203, 0x0405);
    encode(code, Op::RET);

    const auto lines = disassemble(code);
    ASSERT_EQ(lines.size(), 5u);
    EXPECT_EQ(lines[0].text, "LL3");
    EXPECT_EQ(lines[1].text, "LLB 12");
    EXPECT_EQ(lines[2].text, "LIW 999");
    EXPECT_EQ(lines[3].text, "FCALL 66051 1029");
    EXPECT_EQ(lines[4].text, "RET");
    EXPECT_EQ(lines[4].offset, 1u + 2 + 3 + 6);
}

TEST(Disasm, DecodePastEndPanics)
{
    std::vector<std::uint8_t> code;
    encode(code, Op::LIW, 999);
    code.pop_back(); // truncate
    EXPECT_THROW(disassemble(code), PanicError);
}

} // namespace
} // namespace fpc::isa
