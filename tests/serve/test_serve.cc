/**
 * @file
 * Tests for the fpc_serve library, bottom-up: the wire protocol
 * (round-trips and malformed-input rejection), the deficit-round-robin
 * dispatcher (weighted fairness in isolation), the drain signal, and a
 * live Server on an ephemeral port driven through the real client —
 * submission paths, admission control, quotas, scrape, and drain.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <poll.h>

#include "common/logging.hh"
#include "lang/codegen.hh"
#include "serve/client.hh"
#include "serve/drain.hh"
#include "serve/server.hh"
#include "serve/tenant.hh"

namespace fpc
{
namespace
{

// ---------------------------------------------------------------------
// Protocol.
// ---------------------------------------------------------------------

TEST(Protocol, SubmitRoundTrip)
{
    serve::Request req;
    req.op = serve::ReqOp::Submit;
    req.submit.reqId = 42;
    req.submit.traceId = 0xfeedfacecafef00dull;
    req.submit.tenant = "gold";
    req.submit.program = "primes";
    req.submit.source = "module M; proc main(n) { return n; }";
    req.submit.entryModule = "M";
    req.submit.entryProc = "main";
    req.submit.args = {7, 0, 65535};

    serve::Request out;
    std::string err;
    ASSERT_TRUE(
        serve::decodeRequest(serve::encodeRequest(req), out, err))
        << err;
    EXPECT_EQ(out.op, serve::ReqOp::Submit);
    EXPECT_EQ(out.submit.reqId, 42u);
    EXPECT_EQ(out.submit.traceId, 0xfeedfacecafef00dull);
    EXPECT_EQ(out.submit.tenant, "gold");
    EXPECT_EQ(out.submit.program, "primes");
    EXPECT_EQ(out.submit.source, req.submit.source);
    EXPECT_EQ(out.submit.entryModule, "M");
    EXPECT_EQ(out.submit.entryProc, "main");
    EXPECT_EQ(out.submit.args, req.submit.args);
}

TEST(Protocol, ReplyVariantsRoundTrip)
{
    serve::Reply ok;
    ok.reqId = 9;
    ok.status = serve::Status::Ok;
    ok.jobOk = true;
    ok.value = 55;
    ok.stopReason = "topReturn";
    ok.steps = 1234;
    ok.cycles = 9876;
    ok.spanId = 7;
    ok.queueNs = 111222;
    ok.execNs = 333444;

    serve::Reply rejected;
    rejected.reqId = 10;
    rejected.status = serve::Status::Rejected;
    rejected.retryAfterMs = 25;
    rejected.error = "queue full";

    serve::Reply scrape;
    scrape.status = serve::Status::ScrapeText;
    scrape.text = "# EOF\n";

    for (const serve::Reply &reply : {ok, rejected, scrape}) {
        serve::Reply out;
        std::string err;
        ASSERT_TRUE(
            serve::decodeReply(serve::encodeReply(reply), out, err))
            << err;
        EXPECT_EQ(out.reqId, reply.reqId);
        EXPECT_EQ(out.status, reply.status);
        EXPECT_EQ(out.jobOk, reply.jobOk);
        EXPECT_EQ(out.value, reply.value);
        EXPECT_EQ(out.stopReason, reply.stopReason);
        EXPECT_EQ(out.error, reply.error);
        EXPECT_EQ(out.steps, reply.steps);
        EXPECT_EQ(out.cycles, reply.cycles);
        EXPECT_EQ(out.retryAfterMs, reply.retryAfterMs);
        EXPECT_EQ(out.text, reply.text);
        EXPECT_EQ(out.spanId, reply.spanId);
        EXPECT_EQ(out.queueNs, reply.queueNs);
        EXPECT_EQ(out.execNs, reply.execNs);
    }
}

TEST(Protocol, MalformedInputIsRejectedNotThrown)
{
    serve::Request req;
    std::string err;

    // Unknown opcode.
    EXPECT_FALSE(serve::decodeRequest("\x7f", req, err));
    EXPECT_FALSE(err.empty());

    // Truncated SUBMIT: every proper prefix must fail cleanly.
    serve::Request full;
    full.op = serve::ReqOp::Submit;
    full.submit.tenant = "t";
    full.submit.source = "module M; proc main(n) { return n; }";
    full.submit.args = {1, 2};
    const std::string payload = serve::encodeRequest(full);
    for (std::size_t len = 0; len < payload.size(); ++len) {
        EXPECT_FALSE(serve::decodeRequest(
            std::string_view(payload.data(), len), req, err))
            << "prefix of length " << len << " decoded";
    }

    // Trailing garbage after a valid PING.
    EXPECT_FALSE(serve::decodeRequest(std::string("\x03junk"), req,
                                      err));

    serve::Reply reply;
    EXPECT_FALSE(serve::decodeReply("", reply, err));
    EXPECT_FALSE(serve::decodeReply("\x01\x00\x00\x00\x63", reply,
                                    err)); // status 99
}

// ---------------------------------------------------------------------
// Deficit round robin.
// ---------------------------------------------------------------------

TEST(Drr, WeightsSetDispatchShares)
{
    serve::DrrDispatcher drr;
    drr.setQuantum("heavy", 2.0);
    drr.setQuantum("light", 1.0);
    for (int i = 0; i < 12; ++i) {
        drr.enqueue("heavy");
        drr.enqueue("light");
    }
    ASSERT_EQ(drr.queued(), 24u);

    int heavy = 0, light = 0;
    std::string who;
    for (int i = 0; i < 18; ++i) {
        ASSERT_TRUE(drr.pick(who));
        (who == "heavy" ? heavy : light)++;
    }
    // Backlogged throughout: dispatches split 2:1.
    EXPECT_EQ(heavy, 12);
    EXPECT_EQ(light, 6);
}

TEST(Drr, DrainsCompletelyAndStopsPicking)
{
    serve::DrrDispatcher drr;
    drr.enqueue("a");
    drr.enqueue("a");
    drr.enqueue("b");
    std::string who;
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(drr.pick(who));
    EXPECT_FALSE(drr.pick(who));
    EXPECT_EQ(drr.queued(), 0u);
}

TEST(Drr, IdleTenantDoesNotBankCredit)
{
    serve::DrrDispatcher drr;
    drr.setQuantum("idle", 8.0);
    drr.setQuantum("busy", 1.0);

    // idle drains once, then sits out many turns.
    drr.enqueue("idle");
    std::string who;
    ASSERT_TRUE(drr.pick(who));
    EXPECT_EQ(who, "idle");
    for (int i = 0; i < 10; ++i) {
        drr.enqueue("busy");
        ASSERT_TRUE(drr.pick(who));
        EXPECT_EQ(who, "busy");
    }

    // Back with a backlog: its share resumes at 8:1 from zero
    // deficit, not with 10 turns of banked credit spent instantly.
    for (int i = 0; i < 9; ++i) {
        drr.enqueue("idle");
        drr.enqueue("busy");
    }
    int idle = 0, busy = 0;
    for (int i = 0; i < 9; ++i) {
        ASSERT_TRUE(drr.pick(who));
        (who == "idle" ? idle : busy)++;
    }
    EXPECT_EQ(idle, 8);
    EXPECT_EQ(busy, 1);
}

TEST(Drr, SubUnitWeightsAccumulateAcrossTurns)
{
    serve::DrrDispatcher drr;
    drr.setQuantum("slow", 0.5);
    drr.setQuantum("fast", 1.0);
    for (int i = 0; i < 6; ++i) {
        drr.enqueue("slow");
        drr.enqueue("fast");
    }
    int slow = 0, fast = 0;
    std::string who;
    for (int i = 0; i < 9; ++i) {
        ASSERT_TRUE(drr.pick(who));
        (who == "slow" ? slow : fast)++;
    }
    // A 0.5 quantum dispatches every other turn: 1:2 share.
    EXPECT_EQ(slow, 3);
    EXPECT_EQ(fast, 6);
}

// ---------------------------------------------------------------------
// Drain signal.
// ---------------------------------------------------------------------

TEST(DrainSignal, SigtermSetsFlagAndWakesPipe)
{
    serve::DrainSignal drain;
    EXPECT_FALSE(drain.requested());
    EXPECT_FALSE(drain.flag().load());

    std::raise(SIGTERM);

    EXPECT_TRUE(drain.requested());
    EXPECT_TRUE(drain.flag().load());
    pollfd pfd = {drain.fd(), POLLIN, 0};
    EXPECT_EQ(::poll(&pfd, 1, 1000), 1);
    EXPECT_TRUE(pfd.revents & POLLIN);
}

// ---------------------------------------------------------------------
// The live server.
// ---------------------------------------------------------------------

const char *kFibSource = R"(
    module Fib;
    proc fib(n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    proc main(n) { return fib(n); }
)";

serve::Client
connectTo(const serve::Server &server)
{
    serve::Client client;
    std::string err;
    if (!client.connect("127.0.0.1", server.port(), err))
        ADD_FAILURE() << "connect: " << err;
    return client;
}

TEST(Server, RunsSourceAndPreloadedPrograms)
{
    serve::ServerConfig sc;
    sc.workers = 2;
    serve::Server server(sc);
    server.addProgram(
        "fib", std::make_shared<const std::vector<Module>>(
                   lang::compile(kFibSource)));
    server.start();
    ASSERT_NE(server.port(), 0);

    serve::Client client = connectTo(server);
    EXPECT_TRUE(client.ping());

    serve::Reply reply;
    ASSERT_TRUE(client.submitSource("", kFibSource, {10}, reply));
    EXPECT_EQ(reply.status, serve::Status::Ok);
    EXPECT_TRUE(reply.jobOk) << reply.error;
    EXPECT_EQ(reply.value, 55u);
    EXPECT_EQ(reply.stopReason, "topReturn");
    EXPECT_GT(reply.steps, 0u);

    ASSERT_TRUE(client.submitProgram("", "fib", {11}, reply));
    EXPECT_EQ(reply.status, serve::Status::Ok);
    EXPECT_TRUE(reply.jobOk) << reply.error;
    EXPECT_EQ(reply.value, 89u);

    server.stop();
    EXPECT_EQ(server.jobsCompleted(), 2u);
    EXPECT_EQ(server.jobsRejected(), 0u);
}

TEST(Server, BadSubmissionsAnswerBadRequest)
{
    serve::ServerConfig sc;
    sc.workers = 1;
    serve::Server server(sc);
    server.start();
    serve::Client client = connectTo(server);

    serve::Reply reply;
    ASSERT_TRUE(client.submitProgram("", "nosuch", {1}, reply));
    EXPECT_EQ(reply.status, serve::Status::BadRequest);
    EXPECT_NE(reply.error.find("nosuch"), std::string::npos);

    ASSERT_TRUE(
        client.submitSource("", "module Broken; proc {", {}, reply));
    EXPECT_EQ(reply.status, serve::Status::BadRequest);
    EXPECT_FALSE(reply.error.empty());

    // The connection survives bad submissions.
    EXPECT_TRUE(client.ping());
    server.stop();
}

TEST(Server, CycleQuotaAnswersOverQuota)
{
    serve::ServerConfig sc;
    sc.workers = 1;
    // metered may spend 1 simulated cycle per (enormous) window: the
    // first job completes and puts it over, the second is refused.
    sc.tenants["metered"] = {1.0, 64, 1};
    sc.quotaWindowMs = 3600 * 1000;
    serve::Server server(sc);
    server.start();
    serve::Client client = connectTo(server);

    serve::Reply reply;
    ASSERT_TRUE(client.submitSource("metered", kFibSource, {5}, reply));
    EXPECT_EQ(reply.status, serve::Status::Ok);
    EXPECT_TRUE(reply.jobOk) << reply.error;

    ASSERT_TRUE(client.submitSource("metered", kFibSource, {5}, reply));
    EXPECT_EQ(reply.status, serve::Status::OverQuota);
    EXPECT_GT(reply.retryAfterMs, 0u);

    // Another tenant is unaffected.
    ASSERT_TRUE(client.submitSource("other", kFibSource, {5}, reply));
    EXPECT_EQ(reply.status, serve::Status::Ok);
    server.stop();
}

TEST(Server, FullQueueAnswersRejectedWithRetryAfter)
{
    serve::ServerConfig sc;
    sc.workers = 1;
    sc.maxInFlight = 1;
    sc.queueCapacity = 1;
    serve::Server server(sc);
    server.start();
    serve::Client client = connectTo(server);

    // Pipeline far more work than one worker and a one-slot queue can
    // hold; admission control must refuse some of it explicitly.
    const unsigned burst = 30;
    for (unsigned i = 0; i < burst; ++i) {
        serve::Request req;
        req.op = serve::ReqOp::Submit;
        req.submit.reqId = i + 1;
        req.submit.source = kFibSource;
        req.submit.args = {12};
        ASSERT_TRUE(client.send(req));
    }
    unsigned ok = 0, rejected = 0;
    for (unsigned i = 0; i < burst; ++i) {
        serve::Reply reply;
        ASSERT_TRUE(client.recv(reply));
        if (reply.status == serve::Status::Ok) {
            EXPECT_TRUE(reply.jobOk) << reply.error;
            ++ok;
        } else {
            ASSERT_EQ(reply.status, serve::Status::Rejected);
            EXPECT_GT(reply.retryAfterMs, 0u);
            ++rejected;
        }
    }
    EXPECT_GT(ok, 0u);
    EXPECT_GT(rejected, 0u);
    EXPECT_EQ(ok + rejected, burst);
    server.stop();
    EXPECT_EQ(server.jobsRejected(), rejected);
}

TEST(Server, ScrapeExposesServingMetrics)
{
    serve::ServerConfig sc;
    sc.workers = 1;
    sc.tenants["gold"] = {3.0, 64, 0};
    serve::Server server(sc);
    server.start();
    serve::Client client = connectTo(server);

    serve::Reply reply;
    ASSERT_TRUE(client.submitSource("gold", kFibSource, {8}, reply));
    EXPECT_EQ(reply.status, serve::Status::Ok);

    std::string text;
    ASSERT_TRUE(client.scrape(text));
    EXPECT_NE(text.find("fpc_serve_queue_depth"), std::string::npos);
    EXPECT_NE(text.find("fpc_serve_jobs_completed"),
              std::string::npos);
    EXPECT_NE(text.find("fpc_serve_job_latency_ms_p99"),
              std::string::npos);
    EXPECT_NE(text.find("tenant=\"gold\""), std::string::npos);
    EXPECT_NE(text.find("# EOF\n"), std::string::npos);
    server.stop();
}

TEST(Server, DrainRefusesNewWorkThenStops)
{
    serve::ServerConfig sc;
    sc.workers = 1;
    serve::Server server(sc);
    server.start();
    serve::Client client = connectTo(server);

    serve::Reply reply;
    ASSERT_TRUE(client.submitSource("", kFibSource, {9}, reply));
    EXPECT_EQ(reply.status, serve::Status::Ok);

    server.drain();
    EXPECT_TRUE(server.draining());

    // The established connection still gets answers — explicit
    // DRAINING, not a hang or a dropped socket.
    ASSERT_TRUE(client.submitSource("", kFibSource, {9}, reply));
    EXPECT_EQ(reply.status, serve::Status::Draining);

    server.stop();
    EXPECT_EQ(server.jobsCompleted(), 1u);
}

// ---------------------------------------------------------------------
// Span tracing and latency attribution through the live server.
// ---------------------------------------------------------------------

struct ParsedSpan
{
    std::uint64_t traceId = 0;
    std::uint32_t reqId = 0;
    std::string kind;
    std::string track;
    std::int64_t start = 0;
    std::int64_t end = 0;
    bool ok = false;
};

/** Parse writeSpansLog output into per-request-id span maps. */
std::map<std::uint64_t, std::map<std::string, ParsedSpan>>
parseSpansLog(const std::string &log)
{
    std::map<std::uint64_t, std::map<std::string, ParsedSpan>> trees;
    std::istringstream is(log);
    std::string tag;
    EXPECT_TRUE(std::getline(is, tag));
    EXPECT_EQ(tag, "fpc-spans-v1");
    std::string line;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        ls >> tag;
        if (tag != "span")
            continue;
        std::uint64_t id = 0;
        std::string tenant, okText;
        ParsedSpan s;
        ls >> id >> s.traceId >> s.reqId >> s.kind >> s.track >>
            tenant >> s.start >> s.end >> okText;
        EXPECT_FALSE(ls.fail()) << line;
        s.ok = okText == "ok";
        trees[id].emplace(s.kind, s);
    }
    return trees;
}

TEST(Server, SpanTreesBracketEveryRequest)
{
    serve::ServerConfig sc;
    sc.workers = 2;
    sc.spans = true;
    serve::Server server(sc);
    server.start();
    serve::Client client = connectTo(server);

    std::map<std::uint64_t, unsigned> sentTrace; // traceId -> reqId
    std::map<unsigned, std::uint64_t> spanIds;   // reqId -> spanId
    for (unsigned i = 1; i <= 3; ++i) {
        serve::Request req;
        req.op = serve::ReqOp::Submit;
        req.submit.reqId = i;
        req.submit.traceId = 0xabc000 + i;
        req.submit.source = kFibSource;
        req.submit.args = {8};
        sentTrace[req.submit.traceId] = i;
        ASSERT_TRUE(client.send(req));
        serve::Reply reply;
        ASSERT_TRUE(client.recv(reply));
        ASSERT_EQ(reply.status, serve::Status::Ok);
        EXPECT_TRUE(reply.jobOk) << reply.error;
        // The reply carries the attribution breakdown and the span id
        // that names this request's tree in the exported log.
        EXPECT_NE(reply.spanId, 0u);
        EXPECT_GT(reply.execNs, 0u);
        spanIds[i] = reply.spanId;
    }
    server.stop();
    EXPECT_TRUE(server.spanFaults().empty());

    std::ostringstream os;
    server.writeSpansLog(os);
    const auto trees = parseSpansLog(os.str());
    ASSERT_EQ(trees.size(), 3u);
    for (const auto &[id, spans] : trees) {
        // Every admitted ok request carries the full five-phase tree.
        ASSERT_EQ(spans.size(), 6u);
        ASSERT_EQ(spans.count("request"), 1u);
        const ParsedSpan &req = spans.at("request");
        EXPECT_TRUE(req.ok);
        // The span id echoed on the wire names this tree, and the
        // client-supplied traceId made the round trip.
        ASSERT_EQ(sentTrace.count(req.traceId), 1u);
        EXPECT_EQ(spanIds[sentTrace[req.traceId]], id);
        EXPECT_EQ(req.reqId, sentTrace[req.traceId]);
        std::int64_t phaseSum = 0;
        for (const char *kind :
             {"admission", "queued", "dispatch", "execute", "reply"}) {
            ASSERT_EQ(spans.count(kind), 1u) << kind;
            const ParsedSpan &p = spans.at(kind);
            EXPECT_TRUE(p.ok) << kind;
            EXPECT_GE(p.start, req.start) << kind;
            EXPECT_LE(p.end, req.end) << kind;
            EXPECT_EQ(p.traceId, req.traceId) << kind;
            phaseSum += p.end - p.start;
        }
        // Adjacent phases share boundary timestamps: the breakdown
        // partitions the request span exactly (zero slack).
        EXPECT_EQ(phaseSum, req.end - req.start);
        // Execute (and dispatch, re-homed at execution start) sit on
        // a worker track; admission on the connection track.
        EXPECT_EQ(spans.at("execute").track.rfind("worker:", 0), 0u);
        EXPECT_EQ(spans.at("dispatch").track,
                  spans.at("execute").track);
        EXPECT_EQ(spans.at("admission").track.rfind("conn:", 0), 0u);
    }
}

TEST(Server, PipelinedRepliesOutOfOrderWithScrapeInFlight)
{
    serve::ServerConfig sc;
    sc.workers = 2;
    sc.spans = true;
    serve::Server server(sc);
    server.start();
    serve::Client client = connectTo(server);

    // One deliberately slow job first, then a burst of quick ones:
    // with two workers the quick jobs overtake it, so replies come
    // back out of submission order and must be matched by reqId. A
    // SCRAPE rides the same pipelined connection mid-flight.
    std::map<unsigned, Word> want;
    serve::Request req;
    req.op = serve::ReqOp::Submit;
    req.submit.source = kFibSource;
    req.submit.reqId = 1;
    req.submit.traceId = 1;
    req.submit.args = {22};
    want[1] = 17711;
    ASSERT_TRUE(client.send(req));
    for (unsigned i = 2; i <= 8; ++i) {
        req.submit.reqId = i;
        req.submit.traceId = i;
        req.submit.args = {3};
        want[i] = 2;
        ASSERT_TRUE(client.send(req));
    }
    serve::Request scrapeReq;
    scrapeReq.op = serve::ReqOp::Scrape;
    ASSERT_TRUE(client.send(scrapeReq));

    std::vector<unsigned> order;
    std::set<std::uint64_t> spanIds;
    std::string scrapeText;
    for (int i = 0; i < 9; ++i) {
        serve::Reply reply;
        ASSERT_TRUE(client.recv(reply));
        if (reply.status == serve::Status::ScrapeText) {
            scrapeText = reply.text;
            continue;
        }
        ASSERT_EQ(reply.status, serve::Status::Ok);
        ASSERT_EQ(want.count(reply.reqId), 1u);
        EXPECT_EQ(reply.value, want[reply.reqId]);
        EXPECT_NE(reply.spanId, 0u);
        spanIds.insert(reply.spanId);
        order.push_back(reply.reqId);
    }
    ASSERT_EQ(order.size(), 8u);
    EXPECT_EQ(spanIds.size(), 8u); // span ids are per-request
    // The scrape answered mid-flight with a complete exposition.
    ASSERT_FALSE(scrapeText.empty());
    EXPECT_NE(scrapeText.find("# EOF\n"), std::string::npos);
    // The slow first submission must not have answered first.
    EXPECT_NE(order.front(), 1u);
    server.stop();
    EXPECT_TRUE(server.spanFaults().empty());
}

TEST(Server, ScrapeExposesAttributionHistogramsAndSlo)
{
    serve::ServerConfig sc;
    sc.workers = 1;
    sc.spans = true;
    // gold's SLO is generous (every request lands under 10 s);
    // strict's is impossible, so its requests all count bad.
    sc.tenants["gold"] = {3.0, 64, 0, 10000.0};
    sc.tenants["strict"] = {1.0, 64, 0, 0.000001};
    serve::Server server(sc);
    server.start();
    serve::Client client = connectTo(server);

    serve::Reply reply;
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(
            client.submitSource("gold", kFibSource, {8}, reply));
        ASSERT_EQ(reply.status, serve::Status::Ok);
    }
    ASSERT_TRUE(
        client.submitSource("strict", kFibSource, {8}, reply));
    ASSERT_EQ(reply.status, serve::Status::Ok);

    std::string text;
    ASSERT_TRUE(client.scrape(text));
    // Latency attribution histograms + percentile gauges, per phase.
    for (const char *phase : {"queue_wait", "execute", "reply"}) {
        const std::string base = std::string("fpc_serve_tenant_") +
                                 phase + "_ms";
        EXPECT_NE(text.find(base + "_bucket{tenant=\"gold\",le=\""),
                  std::string::npos)
            << base;
        EXPECT_NE(text.find(base + "_count{tenant=\"gold\"}"),
                  std::string::npos)
            << base;
        EXPECT_NE(text.find(std::string("fpc_serve_tenant_") + phase +
                            "_p99_ms{tenant=\"gold\"}"),
                  std::string::npos)
            << phase;
    }
    // SLO tracking: target, good/bad counters, burn rate.
    EXPECT_NE(text.find("fpc_serve_slo_target_ms{tenant=\"gold\"} "
                        "10000"),
              std::string::npos);
    EXPECT_NE(text.find("fpc_serve_slo_good_total{tenant=\"gold\"} 3"),
              std::string::npos);
    EXPECT_NE(
        text.find("fpc_serve_slo_bad_total{tenant=\"strict\"} 1"),
        std::string::npos);
    EXPECT_NE(text.find("fpc_serve_slo_burn_rate{tenant=\"strict\"}"),
              std::string::npos);
    // Span accounting rides the same scrape when spans are on.
    EXPECT_NE(text.find("fpc_serve_spans_recorded_total"),
              std::string::npos);
    server.stop();
}

// ---------------------------------------------------------------------
// Live probe management (PROBE op).
// ---------------------------------------------------------------------

TEST(Protocol, ProbeRequestsAndRepliesRoundTrip)
{
    serve::Request req;
    req.op = serve::ReqOp::Probe;
    req.probe.reqId = 17;
    req.probe.action = serve::ProbeAction::Attach;
    req.probe.spec = "entry:Fib.fib -> quantize(cycles)";
    req.probe.id = 3;

    serve::Request out;
    std::string err;
    ASSERT_TRUE(
        serve::decodeRequest(serve::encodeRequest(req), out, err))
        << err;
    EXPECT_EQ(out.op, serve::ReqOp::Probe);
    EXPECT_EQ(out.probe.reqId, 17u);
    EXPECT_EQ(out.probe.action, serve::ProbeAction::Attach);
    EXPECT_EQ(out.probe.spec, req.probe.spec);
    EXPECT_EQ(out.probe.id, 3u);

    serve::Reply reply;
    reply.reqId = 17;
    reply.status = serve::Status::ProbeText;
    reply.probeId = 5;
    reply.text = "{\"schema\": \"fpc-probes-v1\"}";
    serve::Reply replyOut;
    ASSERT_TRUE(
        serve::decodeReply(serve::encodeReply(reply), replyOut, err))
        << err;
    EXPECT_EQ(replyOut.status, serve::Status::ProbeText);
    EXPECT_EQ(replyOut.probeId, 5u);
    EXPECT_EQ(replyOut.text, reply.text);

    // An out-of-range action is a decode error, not a crash.
    req.probe.action = static_cast<serve::ProbeAction>(9);
    EXPECT_FALSE(
        serve::decodeRequest(serve::encodeRequest(req), out, err));
    EXPECT_FALSE(err.empty());
}

TEST(Server, ProbeAttachReadDetachRoundTripsLive)
{
    serve::ServerConfig sc;
    sc.workers = 2;
    serve::Server server(sc);
    server.start();
    serve::Client client = connectTo(server);

    // Attach while serving; jobs dispatched afterwards are probed.
    serve::Reply reply;
    ASSERT_TRUE(
        client.probeAttach("entry:Fib.fib -> quantize(cycles)",
                           reply));
    ASSERT_EQ(reply.status, serve::Status::ProbeText) << reply.error;
    const std::uint32_t id = reply.probeId;
    EXPECT_EQ(server.probes().attachedCount(), 1u);

    // Attach is idempotent on the canonical spelling.
    ASSERT_TRUE(
        client.probeAttach("entry:Fib.fib->quantize( cycles )",
                           reply));
    ASSERT_EQ(reply.status, serve::Status::ProbeText) << reply.error;
    EXPECT_EQ(reply.probeId, id);
    EXPECT_EQ(server.probes().attachedCount(), 1u);

    // A malformed spec diagnoses without touching the registry or the
    // connection.
    ASSERT_TRUE(client.probeAttach("entry:{{{", reply));
    EXPECT_EQ(reply.status, serve::Status::BadRequest);
    EXPECT_FALSE(reply.error.empty());
    EXPECT_EQ(server.probes().attachedCount(), 1u);

    // Jobs keep completing with the probe attached, and their events
    // fold into the registry: fib(10) makes 177 fib() calls.
    ASSERT_TRUE(client.submitSource("", kFibSource, {10}, reply));
    ASSERT_EQ(reply.status, serve::Status::Ok);
    EXPECT_TRUE(reply.jobOk) << reply.error;
    EXPECT_EQ(reply.value, 55u);

    std::string text;
    ASSERT_TRUE(client.probeRead(text));
    EXPECT_NE(text.find("\"schema\": \"fpc-probes-v1\""),
              std::string::npos);
    EXPECT_NE(text.find("\"driver\": \"fpcserve\""),
              std::string::npos);
    EXPECT_NE(text.find("\"hits\": 177"), std::string::npos) << text;

    // The scrape mirrors the aggregations as fpc_probe_* gauges.
    ASSERT_TRUE(client.scrape(text));
    EXPECT_NE(text.find("fpc_probe_attached 1"), std::string::npos);
    EXPECT_NE(text.find("fpc_probe_hits{id=\"" + std::to_string(id) +
                        "\",spec=\""),
              std::string::npos);
    EXPECT_NE(text.find("fpc_probe_quantize_bucket{id=\"" +
                        std::to_string(id) + "\",pow=\""),
              std::string::npos);

    // Detach; the next job runs unprobed and the gauges go away.
    ASSERT_TRUE(client.probeDetach(id, reply));
    EXPECT_EQ(reply.status, serve::Status::ProbeText) << reply.error;
    EXPECT_EQ(server.probes().attachedCount(), 0u);
    ASSERT_TRUE(client.probeDetach(id, reply));
    EXPECT_EQ(reply.status, serve::Status::BadRequest);

    ASSERT_TRUE(client.submitSource("", kFibSource, {10}, reply));
    ASSERT_EQ(reply.status, serve::Status::Ok);
    EXPECT_EQ(reply.value, 55u);
    ASSERT_TRUE(client.scrape(text));
    EXPECT_NE(text.find("fpc_probe_attached 0"), std::string::npos);
    EXPECT_EQ(text.find("fpc_probe_hits{"), std::string::npos);

    server.stop();
    EXPECT_EQ(server.jobsCompleted(), 2u);
}

TEST(Server, StartupProbeSpecsAttachBeforeServing)
{
    serve::ServerConfig sc;
    sc.workers = 1;
    sc.probeSpecs = {"entry:Fib.fib -> sum(cycles)"};
    serve::Server server(sc);
    server.start();
    EXPECT_EQ(server.probes().attachedCount(), 1u);

    serve::Client client = connectTo(server);
    serve::Reply reply;
    ASSERT_TRUE(client.submitSource("", kFibSource, {8}, reply));
    ASSERT_EQ(reply.status, serve::Status::Ok);
    EXPECT_TRUE(reply.jobOk) << reply.error;

    std::string text;
    ASSERT_TRUE(client.probeRead(text));
    // fib(8) makes 67 fib() calls.
    EXPECT_NE(text.find("\"hits\": 67"), std::string::npos) << text;
    server.stop();
}

} // namespace
} // namespace fpc
