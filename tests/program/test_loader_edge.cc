/**
 * @file
 * Loader edge cases: wide link vectors (two-byte EFCB call sites),
 * link-vector capacity, malformed modules, and data-cache timing
 * transparency.
 */

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "common/logging.hh"
#include "common/strfmt.hh"
#include "lang/codegen.hh"
#include "machine/machine.hh"
#include "program/loader.hh"

namespace fpc
{
namespace
{

TEST(WideLv, TwoByteCallSitesWork)
{
    // 20 externs: indices 8.. use the two-byte EFCB form; all must
    // execute correctly and sum distinctly.
    ModuleBuilder lib("Lib");
    for (unsigned p = 0; p < 20; ++p) {
        auto &proc = lib.proc(strfmt("k{}", p), 0, 1);
        proc.loadImm(static_cast<Word>(p)).ret();
    }
    ModuleBuilder client("Client");
    auto &main = client.proc("main", 0, 2);
    main.loadImm(0).storeLocal(0);
    for (unsigned p = 0; p < 20; ++p) {
        const unsigned ext = client.externRef("Lib", strfmt("k{}", p));
        main.callExtern(ext);
        main.loadLocal(0).op(isa::Op::ADD).storeLocal(0);
    }
    main.loadLocal(0).ret();

    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    loader.add(lib.build());
    loader.add(client.build());
    LinkPlan plan;
    plan.sortLvByUse = false; // keep indices 0..19 in order
    const LoadedImage image = loader.load(mem, plan);
    EXPECT_EQ(image.module("Client").lvCount, 20u);

    Machine machine(mem, image, MachineConfig{});
    machine.start("Client", "main");
    ASSERT_EQ(machine.run().reason, StopReason::TopReturn);
    EXPECT_EQ(machine.popValue(), 190); // 0+1+...+19

    // The one-byte form covered only the first 8; EFCB did the rest.
    const MachineStats &s = machine.stats();
    EXPECT_EQ(s.opCount[static_cast<unsigned>(isa::Op::EFCB)], 12u);
}

TEST(WideLv, TooManySlotsIsFatal)
{
    setQuiet(true);
    ModuleBuilder lib("Lib");
    for (unsigned p = 0; p < 120; ++p)
        lib.proc(strfmt("k{}", p), 0, 1).loadImm(0).ret();
    ModuleBuilder lib2("Lib2");
    for (unsigned p = 0; p < 120; ++p)
        lib2.proc(strfmt("k{}", p), 0, 1).loadImm(0).ret();
    ModuleBuilder lib3("Lib3");
    for (unsigned p = 0; p < 120; ++p)
        lib3.proc(strfmt("k{}", p), 0, 1).loadImm(0).ret();

    ModuleBuilder client("Client");
    auto &main = client.proc("main", 0, 1);
    for (unsigned p = 0; p < 120; ++p) {
        main.callExtern(client.externRef("Lib", strfmt("k{}", p)));
        main.op(isa::Op::DROP);
        main.callExtern(client.externRef("Lib2", strfmt("k{}", p)));
        main.op(isa::Op::DROP);
        main.callExtern(client.externRef("Lib3", strfmt("k{}", p)));
        main.op(isa::Op::DROP);
    }
    main.loadImm(0).ret();

    Memory mem(SystemLayout().memWords);
    Loader loader{SystemLayout(), SizeClasses::standard()};
    loader.add(lib.build());
    loader.add(lib2.build());
    loader.add(lib3.build());
    loader.add(client.build());
    EXPECT_THROW(loader.load(mem, LinkPlan{}), FatalError);
    setQuiet(false);
}

TEST(Malformed, ModuleValidationErrors)
{
    setQuiet(true);
    {
        Module m;
        m.name = "";
        EXPECT_THROW(m.validate(), FatalError);
    }
    {
        Module m;
        m.name = "X";
        EXPECT_THROW(m.validate(), FatalError); // no procedures
    }
    {
        Module m;
        m.name = "X";
        m.numGlobals = 1;
        m.globalInit = {1, 2};
        ProcDef p;
        p.name = "p";
        p.numVars = 1;
        m.procs.push_back(p);
        EXPECT_THROW(m.validate(), FatalError); // extra initials
    }
    setQuiet(false);
}

TEST(DataCache, TimingOnlyNeverChangesResults)
{
    const auto modules = lang::compile(R"(
        module M;
        proc work(n) {
            var i, acc;
            i = 0;
            while (i < n) { acc = acc * 3 + i; i = i + 1; }
            return acc;
        }
        proc main(n) { return work(n) + work(n / 2); }
    )");

    Word plain_result = 0;
    Tick plain_cycles = 0;
    for (const bool use_cache : {false, true}) {
        const SystemLayout layout;
        Memory mem(layout.memWords);
        Loader loader{layout, SizeClasses::standard()};
        for (const auto &m : modules)
            loader.add(m);
        const LoadedImage image = loader.load(mem, LinkPlan{});
        MachineConfig config;
        config.useDataCache = use_cache;
        Machine machine(mem, image, config);
        machine.start("M", "main", std::array<Word, 1>{Word{60}});
        ASSERT_EQ(machine.run().reason, StopReason::TopReturn);
        if (!use_cache) {
            plain_result = machine.popValue();
            plain_cycles = machine.cycles();
        } else {
            EXPECT_EQ(machine.popValue(), plain_result);
            // Hot locals: the cache should cut data latency.
            EXPECT_LT(machine.cycles(), plain_cycles);
            ASSERT_NE(machine.dataCache(), nullptr);
            EXPECT_GT(machine.dataCache()->hitRate(), 0.9);
        }
    }
}

} // namespace
} // namespace fpc
