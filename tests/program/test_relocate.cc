/**
 * @file
 * Code-segment relocation tests (§5.1 T2 vs D1's D3): a Mesa-linked
 * module moves with one word updated per instance — even with a
 * coroutine suspended inside it — while direct linkage refuses.
 */

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "common/logging.hh"
#include "lang/codegen.hh"
#include "machine/machine.hh"
#include "program/relocate.hh"

namespace fpc
{
namespace
{

std::vector<Module>
libProgram()
{
    return lang::compile(R"(
        module Lib;
        var calls;
        proc triple(x) { calls = calls + 1; return x * 3; }

        module Main;
        proc main(n) { return Lib.triple(n) + Lib.triple(1); }
    )");
}

struct RelocRig
{
    SystemLayout layout;
    Memory mem{SystemLayout().memWords};
    LoadedImage image;

    explicit RelocRig(CallLowering lowering = CallLowering::Mesa)
    {
        Loader loader{layout, SizeClasses::standard()};
        for (const auto &m : libProgram())
            loader.add(m);
        LinkPlan plan;
        plan.lowering = lowering;
        image = loader.load(mem, plan);
    }

    Word
    run(Word arg)
    {
        Machine machine(mem, image, MachineConfig{});
        machine.start("Main", "main", std::array<Word, 1>{arg});
        EXPECT_EQ(machine.run().reason, StopReason::TopReturn);
        return machine.popValue();
    }
};

TEST(Relocate, MesaModuleMovesAndKeepsWorking)
{
    RelocRig rig;
    EXPECT_EQ(rig.run(10), 33);

    const CodeByteAddr old_base = rig.image.module("Lib").segBase;
    const CodeByteAddr new_base =
        imageCodeEnd(rig.image) + 4 * rig.layout.codeGranuleBytes;
    const unsigned moved =
        relocateModule(rig.mem, rig.image, "Lib", new_base);
    EXPECT_GT(moved, 0u);
    EXPECT_EQ(rig.image.module("Lib").segBase, new_base);
    EXPECT_NE(old_base, new_base);

    // Same program, callers untouched: only gf[0] changed.
    EXPECT_EQ(rig.run(10), 33);
    EXPECT_EQ(rig.layout.codeSegBase(
                  rig.mem.peek(rig.image.gfAddr("Lib"))),
              new_base);
}

TEST(Relocate, SuspendedActivationSurvivesTheMove)
{
    // A coroutine suspended *inside* the moved module must resume at
    // the right instruction: its saved PC is code-base-relative.
    ModuleBuilder b("Gen");
    auto &gen = b.proc("gen", 1, 2);
    auto loop = gen.newLabel();
    gen.loadImm(0).storeLocal(1);
    gen.label(loop);
    gen.loadLocal(1).loadLocal(1).op(isa::Op::MUL); // i*i
    gen.op(isa::Op::LRC).op(isa::Op::XF);           // hand it back
    gen.loadLocal(1).loadImm(1).op(isa::Op::ADD).storeLocal(1);
    gen.jump(loop);

    ModuleBuilder m("Driver");
    auto &drive = m.proc("drive", 1, 2);
    drive.loadLocal(0).op(isa::Op::XF); // resume generator
    drive.ret();                        // return the yielded value

    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    loader.add(b.build());
    loader.add(m.build());
    LoadedImage image = loader.load(mem, LinkPlan{});

    Machine machine(mem, image, MachineConfig{});
    const Word gen_ctx = machine.spawn("Gen", "gen", {{0}});

    auto next = [&]() {
        machine.start("Driver", "drive",
                      std::array<Word, 1>{gen_ctx});
        EXPECT_EQ(machine.run().reason, StopReason::TopReturn);
        return machine.popValue();
    };

    EXPECT_EQ(next(), 0); // 0*0
    EXPECT_EQ(next(), 1); // 1*1

    // Move Gen's code while its activation sleeps inside it.
    relocateModule(mem, image, "Gen",
                   imageCodeEnd(image) + layout.codeGranuleBytes);

    EXPECT_EQ(next(), 4); // resumes mid-loop at the new address
    EXPECT_EQ(next(), 9);
}

TEST(Relocate, DirectLinkageRefusesD3)
{
    setQuiet(true);
    RelocRig rig(CallLowering::Direct);
    EXPECT_THROW(relocateModule(rig.mem, rig.image, "Lib",
                                imageCodeEnd(rig.image)),
                 FatalError);
    setQuiet(false);
}

TEST(Relocate, ValidatesTargets)
{
    setQuiet(true);
    RelocRig rig;
    EXPECT_THROW(
        relocateModule(rig.mem, rig.image, "Nope", 0x40000),
        FatalError);
    // Misaligned.
    EXPECT_THROW(relocateModule(rig.mem, rig.image, "Lib",
                                imageCodeEnd(rig.image) + 1),
                 FatalError);
    // Overlapping Main's segment.
    EXPECT_THROW(relocateModule(rig.mem, rig.image, "Lib",
                                rig.image.module("Main").segBase),
                 FatalError);
    setQuiet(false);
}

} // namespace
} // namespace fpc
