/**
 * @file
 * Tests for procedure-body lowering: the grow-only jump fixpoint,
 * compact jump forms, far-conditional inversion, and call-site policy
 * interaction.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/disasm.hh"
#include "program/lower.hh"

namespace fpc
{
namespace
{

/** A fixed-size policy for isolated lowering tests. */
class TestPolicy : public CallSitePolicy
{
  public:
    unsigned extSize = 1;
    unsigned localSize = 1;

    unsigned
    extCallSize(unsigned) const override
    {
        return extSize;
    }

    unsigned
    localCallSize(unsigned) const override
    {
        return localSize;
    }

    void
    encodeExtCall(std::vector<std::uint8_t> &out, unsigned id,
                  CodeByteAddr) const override
    {
        isa::encode(out, isa::extCallOp(id),
                    static_cast<std::int32_t>(id));
    }

    void
    encodeLocalCall(std::vector<std::uint8_t> &out, unsigned id,
                    CodeByteAddr) const override
    {
        isa::encode(out, isa::localCallOp(id),
                    static_cast<std::int32_t>(id));
    }

    unsigned
    loadDescLvIndex(unsigned id) const override
    {
        return id;
    }
};

ProcDef
makeProc(std::vector<AsmInst> code, unsigned labels)
{
    ProcDef def;
    def.name = "t";
    def.numVars = 4;
    def.numLabels = labels;
    def.code = std::move(code);
    return def;
}

std::vector<std::uint8_t>
lower(const ProcDef &def)
{
    TestPolicy policy;
    const auto sizes = layoutBody(def, policy);
    return encodeBody(def, policy, sizes, 0);
}

TEST(Lower, TinyForwardJumpUsesOneByteForm)
{
    using K = AsmInst::Kind;
    // jump over one NOOP: displacement 2 -> J2.
    const auto bytes = lower(makeProc(
        {AsmInst::jump(K::Jump, 0), AsmInst::plain(isa::Op::NOOP),
         AsmInst::label(0), AsmInst::plain(isa::Op::RET)},
        1));
    ASSERT_EQ(bytes.size(), 3u);
    EXPECT_EQ(static_cast<isa::Op>(bytes[0]), isa::Op::J2);
}

TEST(Lower, MediumJumpUsesByteForm)
{
    using K = AsmInst::Kind;
    std::vector<AsmInst> code = {AsmInst::jump(K::Jump, 0)};
    for (int i = 0; i < 40; ++i)
        code.push_back(AsmInst::plain(isa::Op::NOOP));
    code.push_back(AsmInst::label(0));
    code.push_back(AsmInst::plain(isa::Op::RET));
    const auto bytes = lower(makeProc(std::move(code), 1));
    EXPECT_EQ(static_cast<isa::Op>(bytes[0]), isa::Op::JB);
    const auto inst = isa::decodeAt(bytes, 0);
    EXPECT_EQ(inst.operand, 42); // 2 (JB) + 40 NOOPs
}

TEST(Lower, FarJumpGrowsToWordForm)
{
    using K = AsmInst::Kind;
    std::vector<AsmInst> code = {AsmInst::jump(K::Jump, 0)};
    for (int i = 0; i < 300; ++i)
        code.push_back(AsmInst::plain(isa::Op::NOOP));
    code.push_back(AsmInst::label(0));
    code.push_back(AsmInst::plain(isa::Op::RET));
    const auto bytes = lower(makeProc(std::move(code), 1));
    EXPECT_EQ(static_cast<isa::Op>(bytes[0]), isa::Op::JW);
    EXPECT_EQ(isa::decodeAt(bytes, 0).operand, 303);
}

TEST(Lower, BackwardJumpIsNegative)
{
    using K = AsmInst::Kind;
    const auto bytes = lower(makeProc(
        {AsmInst::label(0), AsmInst::plain(isa::Op::NOOP),
         AsmInst::jump(K::Jump, 0)},
        1));
    EXPECT_EQ(static_cast<isa::Op>(bytes[1]), isa::Op::JB);
    EXPECT_EQ(isa::decodeAt(bytes, 1).operand, -1);
}

TEST(Lower, FarConditionalInverts)
{
    using K = AsmInst::Kind;
    std::vector<AsmInst> code = {AsmInst::jump(K::JumpZero, 0)};
    for (int i = 0; i < 300; ++i)
        code.push_back(AsmInst::plain(isa::Op::NOOP));
    code.push_back(AsmInst::label(0));
    code.push_back(AsmInst::plain(isa::Op::RET));
    const auto bytes = lower(makeProc(std::move(code), 1));
    // Inverted short conditional over a word jump.
    EXPECT_EQ(static_cast<isa::Op>(bytes[0]), isa::Op::JNZB);
    EXPECT_EQ(isa::decodeAt(bytes, 0).operand, 5);
    EXPECT_EQ(static_cast<isa::Op>(bytes[2]), isa::Op::JW);
    EXPECT_EQ(isa::decodeAt(bytes, 2).operand, 303); // 305 - 2
}

TEST(Lower, NearConditionalStaysShort)
{
    using K = AsmInst::Kind;
    const auto bytes = lower(makeProc(
        {AsmInst::jump(K::JumpNotZero, 0),
         AsmInst::plain(isa::Op::NOOP), AsmInst::label(0),
         AsmInst::plain(isa::Op::RET)},
        1));
    EXPECT_EQ(static_cast<isa::Op>(bytes[0]), isa::Op::JNZB);
    EXPECT_EQ(isa::decodeAt(bytes, 0).operand, 3);
}

TEST(Lower, ChainedJumpsReachFixpoint)
{
    using K = AsmInst::Kind;
    // Two interleaved jumps whose sizes depend on each other.
    std::vector<AsmInst> code;
    code.push_back(AsmInst::jump(K::Jump, 0)); // far forward
    for (int i = 0; i < 120; ++i)
        code.push_back(AsmInst::plain(isa::Op::NOOP));
    code.push_back(AsmInst::jump(K::Jump, 1)); // near forward
    code.push_back(AsmInst::label(1));
    for (int i = 0; i < 10; ++i)
        code.push_back(AsmInst::plain(isa::Op::NOOP));
    code.push_back(AsmInst::label(0));
    code.push_back(AsmInst::plain(isa::Op::RET));
    const auto bytes = lower(makeProc(std::move(code), 2));
    // Decode everything: offsets must land on instruction starts.
    const auto lines = isa::disassemble(bytes);
    EXPECT_EQ(lines.back().text, "RET");
}

TEST(Lower, UnboundLabelIsFatal)
{
    using K = AsmInst::Kind;
    setQuiet(true);
    EXPECT_THROW(
        lower(makeProc({AsmInst::jump(K::Jump, 0)}, 1)),
        FatalError);
    setQuiet(false);
}

TEST(Lower, CallSizesComeFromPolicy)
{
    TestPolicy policy;
    policy.extSize = 4;
    ProcDef def = makeProc({AsmInst::extCall(0)}, 0);
    const auto sizes = layoutBody(def, policy);
    EXPECT_EQ(bodySize(sizes), 4u);
}

TEST(Lower, LoadDescEncodesLvIndex)
{
    const auto bytes = lower(makeProc({AsmInst::loadDesc(9)}, 0));
    ASSERT_EQ(bytes.size(), 2u);
    EXPECT_EQ(static_cast<isa::Op>(bytes[0]), isa::Op::LPD);
    EXPECT_EQ(bytes[1], 9);
}

TEST(Lower, LabelsOccupyNoSpace)
{
    const auto bytes = lower(makeProc(
        {AsmInst::label(0), AsmInst::label(1),
         AsmInst::plain(isa::Op::RET)},
        2));
    EXPECT_EQ(bytes.size(), 1u);
}

} // namespace
} // namespace fpc
