/**
 * @file
 * Loader/binder tests: image layout invariants, link-vector binding
 * and frequency sorting, GFT bias allocation for >32-entry modules,
 * the D2 multi-instance fallback, and the fat/direct prologues.
 */

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "common/logging.hh"
#include "common/strfmt.hh"
#include "program/loader.hh"
#include "xfer/context.hh"

namespace fpc
{
namespace
{

Module
leafModule(const std::string &name = "Leaf")
{
    ModuleBuilder b(name);
    b.globals(2, {11, 22});
    auto &one = b.proc("one", 0, 1);
    one.loadImm(1).ret();
    auto &two = b.proc("two", 1, 1);
    two.loadLocal(0).ret();
    return b.build();
}

Module
callerModule()
{
    ModuleBuilder b("Caller");
    b.globals(1);
    const unsigned one = b.externRef("Leaf", "one");
    const unsigned two = b.externRef("Leaf", "two");
    auto &main = b.proc("main", 0, 1);
    // "two" used more often than "one": should win LV slot 0.
    main.loadImm(1).callExtern(two);
    main.op(isa::Op::DROP).loadImm(2).callExtern(two);
    main.op(isa::Op::DROP).callExtern(one);
    main.ret();
    return b.build();
}

struct LoadRig
{
    SystemLayout layout;
    Memory mem{SystemLayout().memWords};
    LoadedImage image;

    explicit LoadRig(const LinkPlan &plan = LinkPlan{},
                     std::vector<Module> extra = {},
                     unsigned leaf_instances = 1)
    {
        Loader loader{layout, SizeClasses::standard()};
        loader.add(leafModule());
        loader.add(callerModule());
        for (auto &m : extra)
            loader.add(std::move(m));
        for (unsigned i = 1; i < leaf_instances; ++i)
            loader.addInstance("Leaf");
        image = loader.load(mem, plan);
    }
};

TEST(Loader, EntryVectorPointsAtFsiBytes)
{
    LoadRig rig;
    const PlacedModule &leaf = rig.image.module("Leaf");
    for (unsigned p = 0; p < leaf.procs.size(); ++p) {
        const Word ev =
            rig.mem.peek(leaf.segBase / wordBytes + p);
        EXPECT_EQ(ev, leaf.procs[p].evOffset);
        // The byte at the EV offset is the procedure's fsi.
        const unsigned fsi = rig.mem.peekByte(leaf.segBase + ev);
        EXPECT_EQ(fsi, leaf.procs[p].fsi);
    }
}

TEST(Loader, GlobalFrameHoldsCodeBaseAndInitials)
{
    LoadRig rig;
    const PlacedModule &leaf = rig.image.module("Leaf");
    const Addr gf = rig.image.gfAddr("Leaf");
    EXPECT_EQ(gf % 4, 0u);
    EXPECT_EQ(rig.layout.codeSegBase(rig.mem.peek(gf)), leaf.segBase);
    EXPECT_EQ(rig.mem.peek(gf + 1), 11);
    EXPECT_EQ(rig.mem.peek(gf + 2), 22);
}

TEST(Loader, GftEntriesResolveInstances)
{
    LoadRig rig;
    const PlacedInstance &inst = rig.image.instance("Leaf");
    const Word raw = rig.mem.peek(rig.layout.gftAddr + inst.gftBase);
    const GftEntry entry = unpackGftEntry(raw, rig.layout);
    EXPECT_EQ(entry.gfAddr, inst.gfAddr);
    EXPECT_EQ(entry.bias, 0u);
}

TEST(Loader, LinkVectorBindsDescriptors)
{
    LoadRig rig;
    const PlacedModule &caller = rig.image.module("Caller");
    EXPECT_EQ(caller.lvCount, 2u);
    const Addr gf = rig.image.gfAddr("Caller");
    // Slot 0 = hottest extern = Leaf.two (2 static uses).
    const Word slot0 = rig.mem.peek(gf - 1);
    EXPECT_EQ(slot0, rig.image.procDescriptor("Leaf", "two"));
    const Word slot1 = rig.mem.peek(gf - 2);
    EXPECT_EQ(slot1, rig.image.procDescriptor("Leaf", "one"));
}

TEST(Loader, LvSortingCanBeDisabled)
{
    LinkPlan plan;
    plan.sortLvByUse = false;
    LoadRig rig(plan);
    const Addr gf = rig.image.gfAddr("Caller");
    // Declaration order: one first.
    EXPECT_EQ(rig.mem.peek(gf - 1),
              rig.image.procDescriptor("Leaf", "one"));
}

TEST(Loader, DirectPlanPlantsHeadersAndDropsLv)
{
    LinkPlan plan;
    plan.lowering = CallLowering::Direct;
    LoadRig rig(plan);

    const PlacedModule &caller = rig.image.module("Caller");
    EXPECT_EQ(caller.lvCount, 0u); // "two bytes of LV entry are saved"

    // The callee prologue holds GF then fsi, then code (§6).
    const PlacedModule &leaf = rig.image.module("Leaf");
    const PlacedProc &pp = leaf.procs[0];
    EXPECT_EQ(pp.prologueBytes, 4u);
    const Addr gf = rig.image.gfAddr("Leaf");
    const Word planted =
        (rig.mem.peekByte(pp.prologueAddr) << 8) |
        rig.mem.peekByte(pp.prologueAddr + 1);
    EXPECT_EQ(planted, gf);
    const Word fsi =
        (rig.mem.peekByte(pp.prologueAddr + 2) << 8) |
        rig.mem.peekByte(pp.prologueAddr + 3);
    EXPECT_EQ(fsi, pp.fsi);
    // The EV still points at a usable fsi byte (the header's low
    // byte), so EXTERNALCALLs into a direct module keep working.
    EXPECT_EQ(pp.evOffset,
              pp.prologueAddr + 3 - leaf.segBase);
}

TEST(Loader, MultiInstanceFallsBackToMesa)
{
    setQuiet(true);
    LinkPlan plan;
    plan.lowering = CallLowering::Direct;
    LoadRig rig(plan, {}, 2); // two Leaf instances -> D2
    setQuiet(false);

    // Leaf fell back to mesa linkage; Caller's calls to it use LV.
    const PlacedModule &leaf = rig.image.module("Leaf");
    EXPECT_EQ(leaf.lowering, CallLowering::Mesa);
    EXPECT_EQ(leaf.procs[0].prologueBytes, 1u);
    const PlacedModule &caller = rig.image.module("Caller");
    EXPECT_EQ(caller.lvCount, 2u);

    // Both instances share code but have distinct global frames.
    const PlacedInstance &i0 = rig.image.instance("Leaf", 0);
    const PlacedInstance &i1 = rig.image.instance("Leaf", 1);
    EXPECT_NE(i0.gfAddr, i1.gfAddr);
    EXPECT_EQ(rig.mem.peek(i0.gfAddr), rig.mem.peek(i1.gfAddr));
    EXPECT_NE(i0.gftBase, i1.gftBase);
}

TEST(Loader, BiasExtendsModulesPast32Procs)
{
    ModuleBuilder b("Big");
    for (unsigned p = 0; p < 40; ++p) {
        auto &proc = b.proc(strfmt("p{}", p), 0, 1);
        proc.loadImm(static_cast<Word>(p % 7)).ret();
    }
    SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    loader.add(b.build());
    const LoadedImage image = loader.load(mem, LinkPlan{});

    const PlacedInstance &inst = image.instance("Big");
    EXPECT_EQ(inst.gftCount, 2u); // ceil(40/32)

    // Descriptor for p35 must use the second (bias 1) GFT entry.
    const Word desc = image.procDescriptor("Big", "p35");
    const Context ctx = unpackContext(desc, layout);
    EXPECT_EQ(ctx.env, inst.gftBase + 1);
    EXPECT_EQ(ctx.code, 35u % 32);
    const GftEntry second =
        unpackGftEntry(mem.peek(layout.gftAddr + inst.gftBase + 1),
                       layout);
    EXPECT_EQ(second.bias, 1u);
    EXPECT_EQ(second.gfAddr, inst.gfAddr);
}

TEST(Loader, TooManyProcsRejected)
{
    setQuiet(true);
    ModuleBuilder b("Huge");
    for (unsigned p = 0; p < 129; ++p)
        b.proc(strfmt("p{}", p), 0, 1).loadImm(0).ret();
    EXPECT_THROW(b.build(), FatalError);
    setQuiet(false);
}

TEST(Loader, UnresolvedExternIsFatal)
{
    setQuiet(true);
    ModuleBuilder b("Lost");
    const unsigned ext = b.externRef("Nowhere", "nothing");
    b.proc("main", 0, 1).callExtern(ext).ret();
    Memory mem(SystemLayout().memWords);
    Loader loader{SystemLayout(), SizeClasses::standard()};
    loader.add(b.build());
    EXPECT_THROW(loader.load(mem, LinkPlan{}), FatalError);
    setQuiet(false);
}

TEST(Loader, DuplicateModuleNameRejected)
{
    setQuiet(true);
    Loader loader{SystemLayout(), SizeClasses::standard()};
    loader.add(leafModule());
    EXPECT_THROW(loader.add(leafModule()), FatalError);
    EXPECT_THROW(loader.addInstance("Nope"), FatalError);
    setQuiet(false);
}

TEST(Loader, CodeSegmentsAreGranuleAlignedAndDisjoint)
{
    LoadRig rig;
    const auto &mods = rig.image.modules();
    for (std::size_t i = 0; i < mods.size(); ++i) {
        EXPECT_EQ(mods[i].segBase % rig.layout.codeGranuleBytes, 0u);
        for (std::size_t j = i + 1; j < mods.size(); ++j) {
            const bool disjoint =
                mods[i].segBase + mods[i].segBytes <= mods[j].segBase ||
                mods[j].segBase + mods[j].segBytes <= mods[i].segBase;
            EXPECT_TRUE(disjoint);
        }
    }
}

TEST(Loader, PerTargetOverrideMixesLinkage)
{
    LinkPlan plan;
    plan.lowering = CallLowering::Mesa;
    plan.targetOverride["Leaf"] = CallLowering::Direct;
    LoadRig rig(plan);
    EXPECT_EQ(rig.image.module("Leaf").lowering, CallLowering::Direct);
    EXPECT_EQ(rig.image.module("Caller").lowering, CallLowering::Mesa);
    // Caller needs no LV slots: all its externs target Leaf.
    EXPECT_EQ(rig.image.module("Caller").lvCount, 0u);
}

TEST(Loader, ImageAccessorsValidate)
{
    setQuiet(true);
    LoadRig rig;
    EXPECT_THROW(rig.image.module("Missing"), FatalError);
    EXPECT_THROW(rig.image.instance("Leaf", 1), FatalError);
    EXPECT_THROW(rig.image.procDescriptor("Leaf", "missing"),
                 FatalError);
    EXPECT_GT(rig.image.codeBytes(), 0u);
    EXPECT_EQ(rig.image.gftEntriesUsed(), 2u);
    setQuiet(false);
}

} // namespace
} // namespace fpc
