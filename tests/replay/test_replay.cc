/**
 * @file
 * Tests for the fpc_replay library: fpc-record-v1 round-tripping,
 * record/verify on every engine, the accel on/off determinism
 * contract, seeded fault injection (a corrupted digest must be
 * pinpointed to the right interval and produce a divergence bundle),
 * forced scheduler decisions, runtime batch recording, and the
 * cross-engine diverge check.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "lang/codegen.hh"
#include "machine/digest.hh"
#include "machine/machine.hh"
#include "program/loader.hh"
#include "replay/record.hh"
#include "replay/recorder.hh"
#include "replay/replayer.hh"
#include "sched/runtime.hh"
#include "sched/scheduler.hh"

namespace fpc
{
namespace
{

const char *const kFibSource = R"(
    module Fib;
    proc fib(n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    proc main(n) {
        var i;
        i = 1;
        while (i <= n) {
            out fib(i);
            i = i + 1;
        }
        return fib(n);
    }
)";

struct Combo
{
    Impl impl;
    CallLowering lowering;
    bool shortCalls;
};

std::vector<Combo>
allCombos()
{
    return {
        {Impl::Simple, CallLowering::Fat, false},
        {Impl::Mesa, CallLowering::Mesa, false},
        {Impl::Ifu, CallLowering::Direct, true},
        {Impl::Banked, CallLowering::Direct, true},
    };
}

/** Record `source` exactly the way the fpcreplay/fpcvm drivers do:
 *  image hash before the Machine exists, bracket sample after
 *  start(), finish before any popValue. */
replay::RecordLog
recordProgram(const std::string &source, const Combo &combo,
              std::vector<Word> args, std::uint64_t timeslice = 0,
              Tick interval = 1000, bool accel = true)
{
    const auto modules = lang::compile(source);

    SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    for (const auto &m : modules)
        loader.add(m);
    LinkPlan plan;
    plan.lowering = combo.lowering;
    plan.shortCalls = combo.shortCalls;
    const LoadedImage image = loader.load(mem, plan);

    replay::RecordLog log;
    log.impl = combo.impl;
    log.lowering = combo.lowering;
    log.shortCalls = combo.shortCalls;
    log.timeslice = timeslice;
    log.accel = accel;
    log.interval = interval;
    log.imageHash = replay::imageHash(mem, image);
    log.entryModule = modules.front().name;
    log.entryProc = "main";
    log.args = args;
    log.source = source;

    MachineConfig config;
    config.impl = combo.impl;
    config.timesliceSteps = timeslice;
    config.accel.enabled = accel;
    Machine machine(mem, image, config);

    replay::Recorder recorder;
    recorder.beginJob(0, 0);
    machine.setSampler(&recorder, interval);
    if (timeslice > 0) {
        machine.setScheduler(recorder.wrapPolicy(
            [](Machine &m) { return m.currentFrameContext(); }));
    }
    machine.start(log.entryModule, log.entryProc, log.args);
    recorder.sample(machine);
    const RunResult result = machine.run();
    recorder.finish(machine, result);
    log.jobs.push_back(recorder.takeJob());
    return log;
}

std::string
serialize(const replay::RecordLog &log)
{
    std::ostringstream os;
    replay::writeRecord(os, log);
    return os.str();
}

replay::RecordLog
parse(const std::string &text)
{
    std::istringstream is(text);
    return replay::parseRecord(is);
}

TEST(RecordFormat, RoundTripsEveryField)
{
    const replay::RecordLog log = recordProgram(
        kFibSource, {Impl::Banked, CallLowering::Direct, true}, {6},
        /*timeslice=*/50);
    const replay::RecordLog back = parse(serialize(log));

    EXPECT_EQ(back.impl, log.impl);
    EXPECT_EQ(back.lowering, log.lowering);
    EXPECT_EQ(back.shortCalls, log.shortCalls);
    EXPECT_EQ(back.banks, log.banks);
    EXPECT_EQ(back.timeslice, log.timeslice);
    EXPECT_EQ(back.accel, log.accel);
    EXPECT_EQ(back.interval, log.interval);
    EXPECT_EQ(back.imageHash, log.imageHash);
    EXPECT_EQ(back.entryModule, log.entryModule);
    EXPECT_EQ(back.entryProc, log.entryProc);
    EXPECT_EQ(back.args, log.args);
    EXPECT_EQ(back.source, log.source);

    ASSERT_EQ(back.jobs.size(), 1u);
    const replay::JobRecord &a = log.jobs.front();
    const replay::JobRecord &b = back.jobs.front();
    EXPECT_EQ(b.id, a.id);
    EXPECT_EQ(b.worker, a.worker);
    ASSERT_EQ(b.samples.size(), a.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(b.samples[i].steps, a.samples[i].steps);
        EXPECT_EQ(b.samples[i].cycles, a.samples[i].cycles);
        EXPECT_EQ(b.samples[i].digest, a.samples[i].digest);
    }
    ASSERT_EQ(b.decisions.size(), a.decisions.size());
    for (std::size_t i = 0; i < a.decisions.size(); ++i) {
        EXPECT_EQ(b.decisions[i].step, a.decisions[i].step);
        EXPECT_EQ(b.decisions[i].ctx, a.decisions[i].ctx);
    }
    EXPECT_EQ(b.final.reason, a.final.reason);
    EXPECT_EQ(b.final.steps, a.final.steps);
    EXPECT_EQ(b.final.cycles, a.final.cycles);
    EXPECT_EQ(b.final.digest, a.final.digest);
    EXPECT_EQ(b.final.value, a.final.value);
    EXPECT_EQ(b.final.pc, a.final.pc);
    EXPECT_EQ(b.final.heapAllocs, a.final.heapAllocs);
}

TEST(RecordFormat, RejectsTruncatedLog)
{
    const replay::RecordLog log = recordProgram(
        kFibSource, {Impl::Mesa, CallLowering::Mesa, false}, {5});
    std::string text = serialize(log);
    text.resize(text.size() / 2); // drop the eof terminator
    EXPECT_THROW(parse(text), FatalError);
}

TEST(Verify, PassesOnEveryEngine)
{
    for (const Combo &combo : allCombos()) {
        const replay::RecordLog log =
            recordProgram(kFibSource, combo, {7});
        replay::Replayer replayer(parse(serialize(log)));
        const replay::VerifyResult r = replayer.verify({});
        EXPECT_TRUE(r.ok) << implName(combo.impl);
        EXPECT_FALSE(r.divergence.has_value()) << implName(combo.impl);
        EXPECT_GE(r.samplesChecked, 2u) << implName(combo.impl);
    }
}

TEST(Verify, PassesWithTimesliceDecisions)
{
    for (const Combo &combo : allCombos()) {
        const replay::RecordLog log = recordProgram(
            kFibSource, combo, {7}, /*timeslice=*/64);
        ASSERT_FALSE(log.jobs.front().decisions.empty())
            << implName(combo.impl);
        replay::Replayer replayer(parse(serialize(log)));
        const replay::VerifyResult r = replayer.verify({});
        EXPECT_TRUE(r.ok) << implName(combo.impl);
        EXPECT_FALSE(r.decisionOverrun) << implName(combo.impl);
    }
}

TEST(Verify, AccelOverrideIsInvisible)
{
    // The determinism contract: simulated numbers are byte-identical
    // with host acceleration on or off, so a recording taken with
    // accel on must verify with accel forced off — and vice versa.
    const replay::RecordLog onLog = recordProgram(
        kFibSource, {Impl::Banked, CallLowering::Direct, true}, {7},
        0, 1000, /*accel=*/true);
    replay::Replayer onReplayer(parse(serialize(onLog)));
    replay::VerifyOptions forceOff;
    forceOff.accelOverride = false;
    EXPECT_TRUE(onReplayer.verify(forceOff).ok);

    const replay::RecordLog offLog = recordProgram(
        kFibSource, {Impl::Banked, CallLowering::Direct, true}, {7},
        0, 1000, /*accel=*/false);
    replay::Replayer offReplayer(parse(serialize(offLog)));
    replay::VerifyOptions forceOn;
    forceOn.accelOverride = true;
    EXPECT_TRUE(offReplayer.verify(forceOn).ok);
}

TEST(Verify, CorruptDigestPinpointsIntervalAndWritesBundle)
{
    const replay::RecordLog log = recordProgram(
        kFibSource, {Impl::Mesa, CallLowering::Mesa, false}, {8});
    ASSERT_GE(log.jobs.front().samples.size(), 3u);
    std::string text = serialize(log);

    // Seeded fault: flip one digest byte in the third sample line.
    std::istringstream is(text);
    std::ostringstream os;
    std::string line;
    unsigned sampleNo = 0;
    while (std::getline(is, line)) {
        if (line.rfind("sample ", 0) == 0 && ++sampleNo == 3) {
            const auto pos = line.find_last_of(' ') + 1;
            line[pos] = line[pos] == 'f' ? '0' : 'f';
        }
        os << line << "\n";
    }
    ASSERT_GE(sampleNo, 3u);

    const auto dir = std::filesystem::temp_directory_path() /
                     "fpc_replay_divergence_test";
    std::filesystem::remove_all(dir);

    replay::Replayer replayer(parse(os.str()));
    replay::VerifyOptions vo;
    vo.divergenceDir = dir.string();
    const replay::VerifyResult r = replayer.verify(vo);

    ASSERT_FALSE(r.ok);
    ASSERT_TRUE(r.divergence.has_value());
    const replay::Divergence &d = *r.divergence;
    // Sample index 2 is the third sample — exactly where the fault
    // was seeded — and its window starts after the second sample.
    EXPECT_EQ(d.job, 0u);
    EXPECT_EQ(d.sampleIndex, 2u);
    EXPECT_FALSE(d.finalMismatch);
    EXPECT_EQ(d.windowBeginStep,
              log.jobs.front().samples[1].steps + 1);
    EXPECT_EQ(d.windowEndStep, log.jobs.front().samples[2].steps);
    // The replay itself is deterministic, so bisection must conclude
    // the recording side is the corrupt one.
    EXPECT_TRUE(d.bisected);
    EXPECT_TRUE(d.selfConsistent);

    ASSERT_FALSE(d.bundlePath.empty());
    std::ifstream bundle(d.bundlePath);
    ASSERT_TRUE(bundle.good());
    std::stringstream buffer;
    buffer << bundle.rdbuf();
    const std::string json = buffer.str();
    EXPECT_NE(json.find("\"fpc-postmortem-v1\""), std::string::npos);
    EXPECT_NE(json.find("\"replay-divergence\""), std::string::npos);
    EXPECT_NE(json.find("\"sampleIndex\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"selfConsistent\": true"),
              std::string::npos);
    EXPECT_NE(json.find("\"recordedFinal\""), std::string::npos);
    EXPECT_NE(json.find("\"replayedFinal\""), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Verify, CorruptFinalValueIsAFinalMismatch)
{
    const replay::RecordLog log = recordProgram(
        kFibSource, {Impl::Mesa, CallLowering::Mesa, false}, {6});
    replay::RecordLog bad = parse(serialize(log));
    bad.jobs.front().final.value ^= 1;
    replay::Replayer replayer(std::move(bad));
    const replay::VerifyResult r = replayer.verify({});
    ASSERT_FALSE(r.ok);
    ASSERT_TRUE(r.divergence.has_value());
    EXPECT_TRUE(r.divergence->finalMismatch);
}

TEST(Verify, WrongImageHashIsReported)
{
    const replay::RecordLog log = recordProgram(
        kFibSource, {Impl::Mesa, CallLowering::Mesa, false}, {5});
    replay::RecordLog bad = parse(serialize(log));
    bad.imageHash ^= 0xdeadbeef;
    replay::Replayer replayer(std::move(bad));
    const replay::VerifyResult r = replayer.verify({});
    ASSERT_FALSE(r.ok);
    ASSERT_TRUE(r.divergence.has_value());
    EXPECT_NE(r.divergence->detail.find("image hash"),
              std::string::npos);
}

TEST(Diverge, EnginesAgreeOnArchitecturalDigests)
{
    const replay::RecordLog log = recordProgram(
        kFibSource, {Impl::Mesa, CallLowering::Mesa, false}, {7});
    replay::Replayer replayer(parse(serialize(log)));
    for (const Impl other :
         {Impl::Simple, Impl::Ifu, Impl::Banked}) {
        const replay::DivergeResult r = replayer.diverge(other);
        EXPECT_TRUE(r.equivalent) << implName(other);
        EXPECT_GT(r.xfersCompared, 0u) << implName(other);
    }
}

TEST(SchedulerReplay, ForcedDecisionsReproduceDispatchOrder)
{
    const auto modules = lang::compile(R"(
        module Procs;
        proc worker(id) {
            var i;
            i = 0;
            while (i < 3) {
                out id * 10 + i;
                yield;
                i = i + 1;
            }
            return id;
        }
    )");

    auto run = [&](sched::Policy policy, auto configure) {
        SystemLayout layout;
        Memory mem(layout.memWords);
        Loader loader{layout, SizeClasses::standard()};
        for (const auto &m : modules)
            loader.add(m);
        LinkPlan plan;
        const LoadedImage image = loader.load(mem, plan);
        MachineConfig config;
        Machine machine(mem, image, config);
        sched::Scheduler sched(machine, policy);
        configure(sched);
        sched.spawn("Procs", "worker", std::array<Word, 1>{Word{1}},
                    1);
        sched.spawn("Procs", "worker", std::array<Word, 1>{Word{2}},
                    5);
        sched.spawn("Procs", "worker", std::array<Word, 1>{Word{3}},
                    3);
        sched.runAll();
        return machine.output();
    };

    // Record the priority policy's dispatch sequence...
    std::vector<replay::Decision> picks;
    const auto recorded =
        run(sched::Policy::Priority, [&](sched::Scheduler &s) {
            s.setPickHook([&picks](std::uint64_t step, unsigned pid) {
                picks.push_back({step, static_cast<Word>(pid)});
            });
        });
    ASSERT_FALSE(picks.empty());

    // ...then force it onto a round-robin scheduler. The forced
    // decisions must win and reproduce the exact output order.
    std::size_t cursor = 0;
    const auto replayed =
        run(sched::Policy::RoundRobin, [&](sched::Scheduler &s) {
            s.setPickOverride(
                [&picks, &cursor](std::uint64_t, int) -> int {
                    if (cursor >= picks.size())
                        return -1;
                    return static_cast<int>(picks[cursor++].ctx);
                });
        });
    EXPECT_EQ(cursor, picks.size());
    EXPECT_EQ(replayed, recorded);

    // Control: round-robin left to its own devices picks a different
    // dispatch order for these priorities.
    const auto freeRun =
        run(sched::Policy::RoundRobin, [](sched::Scheduler &) {});
    EXPECT_NE(freeRun, recorded);
}

TEST(RuntimeRecord, BatchRecordingVerifies)
{
    const auto modules = std::make_shared<const std::vector<Module>>(
        lang::compile(kFibSource));

    sched::RuntimeConfig rc;
    rc.workers = 2;
    rc.record = true;
    rc.machine.timesliceSteps = 100;
    rc.metricsInterval = 500;
    sched::Runtime runtime(rc);
    // One arg list for the whole batch: the fpc-record-v1 header
    // carries a single entry/args, so recordable batches are
    // homogeneous (exactly what fpcrun submits).
    for (unsigned j = 0; j < 4; ++j) {
        sched::Job job;
        job.modules = modules;
        job.module = "Fib";
        job.proc = "main";
        job.args = {Word{6}};
        runtime.submit(job);
    }
    const auto results = runtime.run();
    for (const auto &r : results)
        EXPECT_TRUE(r.ok);

    replay::RecordLog log;
    log.timeslice = rc.machine.timesliceSteps;
    log.interval = rc.metricsInterval;
    log.workers = runtime.workers();
    log.stride = runtime.stride();
    log.imageHash = runtime.recordedImageHash();
    log.entryModule = "Fib";
    log.entryProc = "main";
    log.args = {Word{6}};
    log.source = kFibSource;
    log.jobs = runtime.jobRecords();
    ASSERT_EQ(log.jobs.size(), 4u);
    // Static assignment: job i runs on worker i mod stride.
    for (unsigned j = 0; j < 4; ++j) {
        EXPECT_EQ(log.jobs[j].id, j);
        EXPECT_EQ(log.jobs[j].worker, j % runtime.stride());
    }

    replay::Replayer replayer(parse(serialize(log)));
    const replay::VerifyResult r = replayer.verify({});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.jobsChecked, 4u);
}

TEST(Digest, ScopesBehaveAsDocumented)
{
    const auto modules = lang::compile(kFibSource);
    SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    for (const auto &m : modules)
        loader.add(m);
    LinkPlan plan;
    const LoadedImage image = loader.load(mem, plan);
    MachineConfig config;
    Machine machine(mem, image, config);
    machine.start("Fib", "main", std::array<Word, 1>{Word{5}});

    const std::uint64_t full0 =
        stateDigest(machine, DigestScope::Full);
    const std::uint64_t arch0 =
        stateDigest(machine, DigestScope::Arch);
    EXPECT_NE(full0, arch0); // scopes hash different sections

    // Digests are pure observers: reading state twice is identical
    // and costs no simulated time.
    const Tick before = machine.stats().cycles;
    EXPECT_EQ(stateDigest(machine, DigestScope::Full), full0);
    EXPECT_EQ(machine.stats().cycles, before);

    machine.run();
    EXPECT_NE(stateDigest(machine, DigestScope::Full), full0);
}

} // namespace
} // namespace fpc
