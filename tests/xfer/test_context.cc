/**
 * @file
 * Tests for the control-transfer model's data types: one-word context
 * packing (§4/§5.1), GFT entries with bias, frame layout constants,
 * and the address-space layout.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "xfer/context.hh"
#include "xfer/layout.hh"

namespace fpc
{
namespace
{

TEST(Layout, DefaultValidates)
{
    SystemLayout layout;
    EXPECT_NO_THROW(layout.validate());
}

TEST(Layout, CodeSegmentRoundTrip)
{
    const SystemLayout layout;
    for (const Word seg : {Word{0}, Word{1}, Word{100}, Word{65535}}) {
        const CodeByteAddr base = layout.codeSegBase(seg);
        EXPECT_EQ(base % layout.codeGranuleBytes, 0u);
        EXPECT_EQ(layout.codeSegNum(base), seg);
    }
    // Unaligned or out-of-region bases are rejected.
    EXPECT_THROW(layout.codeSegNum(layout.codeSegBase(1) + 1),
                 PanicError);
    EXPECT_THROW(layout.codeSegNum(0), PanicError);
}

TEST(Layout, FrameRegionTest)
{
    const SystemLayout layout;
    EXPECT_FALSE(layout.isFrameAddr(layout.frameBase - 1));
    EXPECT_TRUE(layout.isFrameAddr(layout.frameBase));
    EXPECT_TRUE(layout.isFrameAddr(layout.frameEnd - 1));
    EXPECT_FALSE(layout.isFrameAddr(layout.frameEnd));
}

TEST(Layout, BrokenLayoutsPanic)
{
    SystemLayout layout;
    layout.globalEnd = 0x20000; // above the 64K-word pointer limit
    EXPECT_THROW(layout.validate(), PanicError);

    SystemLayout l2;
    l2.frameBase = l2.globalEnd - 4; // overlap
    EXPECT_THROW(l2.validate(), PanicError);

    SystemLayout l3;
    l3.frameBase += 2; // not quad aligned
    EXPECT_THROW(l3.validate(), PanicError);
}

TEST(Context, NilIsZeroAndRoundTrips)
{
    const SystemLayout layout;
    EXPECT_EQ(packFrameContext(nilAddr, layout), nilContext);
    const Context c = unpackContext(nilContext, layout);
    EXPECT_EQ(c.tag, Context::Tag::Frame);
    EXPECT_TRUE(c.isNil());
    EXPECT_EQ(contextToString(nilContext, layout), "NIL");
}

TEST(Context, FramePointerRoundTripsAcrossRegion)
{
    const SystemLayout layout;
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        // A frame pointer is one past a quad-aligned header, never
        // quad 0 (reserved for NIL).
        const Addr quads =
            (layout.frameEnd - layout.frameBase) / 4 - 1;
        const Addr quad = 1 + rng.uniform(0, quads - 1);
        const Addr lf = layout.frameBase + quad * 4 + 1;
        const Word ctx = packFrameContext(lf, layout);
        EXPECT_EQ(ctx & 0x8000, 0u) << "frame tag bit must be clear";
        const Context c = unpackContext(ctx, layout);
        ASSERT_EQ(c.tag, Context::Tag::Frame);
        EXPECT_EQ(c.framePtr, lf);
    }
}

TEST(Context, FramePackingRejectsBadPointers)
{
    const SystemLayout layout;
    // Outside the region.
    EXPECT_THROW(packFrameContext(layout.frameBase - 3, layout),
                 PanicError);
    // Misaligned (header would not be quad-aligned).
    EXPECT_THROW(packFrameContext(layout.frameBase + 2, layout),
                 PanicError);
    // Quad 0 is NIL's.
    EXPECT_THROW(packFrameContext(layout.frameBase + 1, layout),
                 PanicError);
}

TEST(Context, ProcDescriptorPacksTenPlusFive)
{
    const SystemLayout layout;
    for (unsigned env : {0u, 1u, 513u, 1023u}) {
        for (unsigned code : {0u, 7u, 31u}) {
            const Word desc = packProcDesc(env, code);
            EXPECT_TRUE(desc & 0x8000) << "proc tag bit";
            const Context c = unpackContext(desc, layout);
            ASSERT_EQ(c.tag, Context::Tag::Proc);
            EXPECT_EQ(c.env, env);
            EXPECT_EQ(c.code, code);
        }
    }
    EXPECT_THROW(packProcDesc(1024, 0), PanicError);
    EXPECT_THROW(packProcDesc(0, 32), PanicError);
}

TEST(Context, DescriptorStringForm)
{
    const SystemLayout layout;
    EXPECT_EQ(contextToString(packProcDesc(7, 3), layout),
              "proc[env=7 code=3]");
}

TEST(GftEntry, PackUnpackWithBias)
{
    const SystemLayout layout;
    for (const Addr gf :
         {layout.globalBase, layout.globalBase + 4,
          (layout.globalEnd - 4) & ~Addr{3}}) {
        for (unsigned bias = 0; bias < 4; ++bias) {
            const Word raw = packGftEntry({gf, bias}, layout);
            const GftEntry entry = unpackGftEntry(raw, layout);
            EXPECT_EQ(entry.gfAddr, gf);
            EXPECT_EQ(entry.bias, bias);
        }
    }
}

TEST(GftEntry, RejectsBadEntries)
{
    const SystemLayout layout;
    EXPECT_THROW(packGftEntry({layout.globalBase + 2, 0}, layout),
                 PanicError); // misaligned
    EXPECT_THROW(packGftEntry({layout.globalEnd, 0}, layout),
                 PanicError); // out of region
    EXPECT_THROW(packGftEntry({layout.globalBase, 4}, layout),
                 PanicError); // bias too big
}

TEST(FrameLayout, PaperFieldOrder)
{
    // §4: return link, environment, PC, then variables; header in
    // front carrying fsi + flags.
    EXPECT_EQ(frame::headerOffset, -1);
    EXPECT_EQ(frame::returnLinkOffset, 0u);
    EXPECT_EQ(frame::globalFrameOffset, 1u);
    EXPECT_EQ(frame::savedPcOffset, 2u);
    EXPECT_EQ(frame::varsOffset, 3u);
    EXPECT_EQ(frame::overheadWords, 3u);
    EXPECT_EQ(frame::fsiMask, 0x1F);
    EXPECT_EQ(frame::retainedFlag & frame::fsiMask, 0);
    EXPECT_EQ(frame::flaggedFlag & frame::retainedFlag, 0);
}

TEST(XferKinds, NamesDistinct)
{
    std::set<std::string> names;
    for (unsigned k = 0; k < static_cast<unsigned>(XferKind::NumKinds);
         ++k) {
        EXPECT_TRUE(
            names.insert(xferKindName(static_cast<XferKind>(k))).second);
    }
}

} // namespace
} // namespace fpc
