/**
 * @file
 * Property tests of the paper's central compatibility guarantee:
 * "with either linkage the program behaves identically (except for
 * space and speed)" (§6), extended across all four implementations.
 *
 * Random synthetic programs (different seeds and shapes) are run
 * under every (engine, linkage) combination; results, outputs and
 * global side effects must agree bit-for-bit. Cost *orderings* the
 * paper predicts are asserted as invariants.
 */

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "lang/codegen.hh"
#include "machine/machine.hh"
#include "program/loader.hh"
#include "workload/synthetic.hh"

namespace fpc
{
namespace
{

struct RunOutcome
{
    Word result = 0;
    std::vector<Word> output;
    std::vector<Word> globals; // entry module's globals
    Tick cycles = 0;
    CountT refs = 0;
    double fastRate = 0;
};

RunOutcome
runWith(const std::vector<Module> &modules, const std::string &mod,
        const std::string &proc, std::vector<Word> args, Impl impl,
        CallLowering lowering, bool short_calls = false)
{
    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    for (const auto &m : modules)
        loader.add(m);
    LinkPlan plan;
    plan.lowering = lowering;
    plan.shortCalls = short_calls;
    const LoadedImage image = loader.load(mem, plan);

    MachineConfig config;
    config.impl = impl;
    Machine machine(mem, image, config);
    machine.start(mod, proc, args);
    const RunResult result = machine.run();
    EXPECT_EQ(result.reason, StopReason::TopReturn) << result.message;

    RunOutcome out;
    out.result = machine.popValue();
    out.output = machine.output();
    const PlacedInstance &inst = image.instance(mod);
    const Module &src = *image.module(mod).src;
    for (unsigned g = 0; g < src.numGlobals; ++g)
        out.globals.push_back(mem.peek(inst.gfAddr + 1 + g));
    out.cycles = machine.cycles();
    out.refs = mem.totalRefs();
    out.fastRate = machine.stats().fastCallReturnRate();
    return out;
}

class RandomPrograms : public testing::TestWithParam<std::uint64_t>
{};

TEST_P(RandomPrograms, AllEnginesAgree)
{
    ProgramConfig pc;
    pc.seed = GetParam();
    pc.modules = 2 + pc.seed % 4;
    pc.procsPerModule = 4 + pc.seed % 7;
    pc.callSitesPerProc = 2 + pc.seed % 3;
    pc.liveCallsPerProc = 1 + pc.seed % 2;
    pc.maxDepth = 6 + pc.seed % 4;
    pc.localCallFraction = 0.3 + 0.1 * (pc.seed % 5);
    const auto modules = generateProgram(pc);
    const std::vector<Word> args = {
        static_cast<Word>(pc.maxDepth)};

    struct Combo
    {
        Impl impl;
        CallLowering lowering;
        bool shortCalls;
    };
    const std::vector<Combo> combos = {
        {Impl::Simple, CallLowering::Fat, false},
        {Impl::Mesa, CallLowering::Mesa, false},
        {Impl::Ifu, CallLowering::Direct, false},
        {Impl::Ifu, CallLowering::Direct, true},
        {Impl::Banked, CallLowering::Direct, true},
        {Impl::Banked, CallLowering::Fat, false},
        {Impl::Simple, CallLowering::Direct, false},
    };

    std::vector<RunOutcome> outcomes;
    for (const Combo &combo : combos) {
        outcomes.push_back(runWith(modules, generatedEntryModule(),
                                   generatedEntryProc(), args,
                                   combo.impl, combo.lowering,
                                   combo.shortCalls));
    }

    for (std::size_t i = 1; i < outcomes.size(); ++i) {
        EXPECT_EQ(outcomes[i].result, outcomes[0].result)
            << "combo " << i;
        EXPECT_EQ(outcomes[i].output, outcomes[0].output);
        EXPECT_EQ(outcomes[i].globals, outcomes[0].globals);
    }

    // Cost orderings the paper predicts, on matched linkages:
    // I4 <= I3 cycles (banks only remove work), and I3 direct is
    // cheaper than I2 mesa in storage references.
    const RunOutcome &i3 = outcomes[2];
    const RunOutcome &i4 = outcomes[4];
    EXPECT_LE(i4.cycles, i3.cycles);
    const RunOutcome &i2 = runWith(modules, generatedEntryModule(),
                                   generatedEntryProc(), args,
                                   Impl::Mesa, CallLowering::Mesa);
    EXPECT_LT(i3.refs, i2.refs);
    // Tiny programs (a handful of transfers) cannot amortize the
    // boot-time call; only assert the jump-speed rate when the run is
    // long enough to be meaningful.
    if (outcomes[0].output.size() + i4.cycles > 20000)
        EXPECT_GT(i4.fastRate, 0.3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                         55, 89));

TEST(MultiInstance, InstancesKeepSeparateGlobals)
{
    // Two instances of a counting module: calls routed to instance 1
    // must not disturb instance 0 (the F2 multiple-instance story).
    const auto counted = lang::compile(R"(
        module Count;
        var n;
        proc bump() { n = n + 1; return n; }
    )");

    ModuleBuilder b("Main");
    const unsigned bump0 = b.externRef("Count", "bump", 0);
    const unsigned bump1 = b.externRef("Count", "bump", 1);
    auto &main = b.proc("main", 0, 1);
    main.callExtern(bump0).op(isa::Op::DROP);
    main.callExtern(bump1).op(isa::Op::DROP);
    main.callExtern(bump1).op(isa::Op::DROP);
    main.callExtern(bump1).ret();

    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    loader.add(counted.front());
    loader.add(b.build());
    loader.addInstance("Count");
    const LoadedImage image = loader.load(mem, LinkPlan{});

    Machine machine(mem, image, MachineConfig{});
    machine.start("Main", "main");
    ASSERT_EQ(machine.run().reason, StopReason::TopReturn);
    EXPECT_EQ(machine.popValue(), 3); // instance 1 bumped thrice
    EXPECT_EQ(mem.peek(image.gfAddr("Count", 0) + 1), 1);
    EXPECT_EQ(mem.peek(image.gfAddr("Count", 1) + 1), 3);
}

TEST(ProcedureVariables, LpdPlusXfCallsThroughADescriptor)
{
    // F3: a context value is first-class; LPD pushes a descriptor
    // from the link vector and XF transfers to it — a call through a
    // procedure variable.
    ModuleBuilder lib("Lib");
    auto &sq = lib.proc("square", 1, 1);
    sq.loadLocal(0).loadLocal(0).op(isa::Op::MUL).ret();

    ModuleBuilder b("Main");
    const unsigned ext = b.externRef("Lib", "square");
    auto &main = b.proc("main", 1, 1);
    main.loadLocal(0);      // argument
    main.loadDescriptor(ext); // the procedure descriptor
    main.op(isa::Op::XF);     // XFER[descriptor]
    main.ret();

    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    loader.add(lib.build());
    loader.add(b.build());
    const LoadedImage image = loader.load(mem, LinkPlan{});

    for (const Impl impl :
         {Impl::Simple, Impl::Mesa, Impl::Ifu, Impl::Banked}) {
        MachineConfig config;
        config.impl = impl;
        Machine machine(mem, image, config);
        machine.start("Main", "main", std::array<Word, 1>{Word{9}});
        ASSERT_EQ(machine.run().reason, StopReason::TopReturn)
            << implName(impl);
        EXPECT_EQ(machine.popValue(), 81) << implName(impl);
    }
}

TEST(DeepRecursion, HundredsOfLiveFramesWork)
{
    const auto modules = lang::compile(R"(
        module Deep;
        proc down(n) {
            if (n == 0) { return 0; }
            return down(n - 1) + 1;
        }
        proc main(n) { return down(n); }
    )");
    for (const Impl impl : {Impl::Mesa, Impl::Banked}) {
        const SystemLayout layout;
        Memory mem(layout.memWords);
        Loader loader{layout, SizeClasses::standard()};
        for (const auto &m : modules)
            loader.add(m);
        const LoadedImage image = loader.load(mem, LinkPlan{});
        MachineConfig config;
        config.impl = impl;
        Machine machine(mem, image, config);
        machine.start("Deep", "main", std::array<Word, 1>{Word{500}});
        ASSERT_EQ(machine.run().reason, StopReason::TopReturn)
            << implName(impl);
        EXPECT_EQ(machine.popValue(), 500);
    }
}

} // namespace
} // namespace fpc
