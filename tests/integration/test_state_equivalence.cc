/**
 * @file
 * Microarchitectural state-equivalence property: after the *same*
 * random transfer trace, the architectural state visible through the
 * model — live frame chain, frame contents, suspended coroutine
 * chains — must be identical across all four implementations. Banks,
 * return stacks and free-frame stacks are pure accelerators; if any
 * of them leaks into architectural state, this test catches it.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "workload/trace.hh"

namespace fpc
{
namespace
{

/** Architectural snapshot: the live frame chain. */
struct Snapshot
{
    std::vector<Addr> chain; ///< current .. outermost
    unsigned depth = 0;
};

/** Read a frame's return link, honouring a shadowing bank. */
Word
frameLink(Machine &m, Addr lf)
{
    const int bank = m.banks().bankOf(lf);
    if (bank >= 0)
        return m.banks().read(bank, frame::returnLinkOffset);
    return m.memory().peek(lf + frame::returnLinkOffset);
}

Snapshot
snapshot(TraceRunner &runner)
{
    Machine &m = runner.machine();
    const SystemLayout &layout = m.image().layout();
    Snapshot snap;
    snap.depth = runner.depth();

    // Walk the return chain. The IFU return stack holds the newest
    // links (innermost last); older ones live in the frames'
    // returnLink words.
    snap.chain.push_back(m.currentFrame());
    const auto rs = m.returnStackFrames();
    for (auto it = rs.rbegin(); it != rs.rend(); ++it)
        snap.chain.push_back(*it);
    while (snap.chain.size() <= 300) {
        const Context ctx =
            unpackContext(frameLink(m, snap.chain.back()), layout);
        if (ctx.tag != Context::Tag::Frame || ctx.isNil())
            break;
        snap.chain.push_back(ctx.framePtr);
    }
    return snap;
}

class StateEquivalence : public testing::TestWithParam<std::uint64_t>
{};

TEST_P(StateEquivalence, SameTraceSameArchitecturalState)
{
    TraceConfig tc;
    tc.length = 3000;
    tc.seed = GetParam();
    tc.persistence = 0.4;
    const auto trace = generateTrace(tc);

    std::vector<Snapshot> snaps;
    for (const Impl impl :
         {Impl::Simple, Impl::Mesa, Impl::Ifu, Impl::Banked}) {
        MachineConfig config;
        config.impl = impl;
        // Same deterministic runner seed => same proc choices.
        TraceRunner runner(config, FrameSizeDist::mesa(), 1,
                           GetParam());
        runner.run(trace);
        snaps.push_back(snapshot(runner));
    }

    // Frame *addresses* may differ across engines (the I4 standard-
    // size policy allocates different classes), but the live chain —
    // depth and length, reconstructed through return stacks and
    // storage links — must be identical.
    for (std::size_t i = 1; i < snaps.size(); ++i) {
        EXPECT_EQ(snaps[i].depth, snaps[0].depth);
        EXPECT_EQ(snaps[i].chain.size(), snaps[0].chain.size());
    }
    EXPECT_EQ(snaps[0].chain.size(), snaps[0].depth + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateEquivalence,
                         testing::Values(11, 22, 33));

/** A stronger content check on a single engine pair: I2 vs I4 with
 *  identical size classes (fixed frame sizes). */
TEST(StateEquivalence, ContentsMatchAcrossMesaAndBanked)
{
    TraceConfig tc;
    tc.length = 2000;
    tc.seed = 5;
    const auto trace = generateTrace(tc);

    auto build = [&](Impl impl) {
        MachineConfig config;
        config.impl = impl;
        // Force every frame into one class so addresses line up.
        config.fastFramePayloadWords = 12;
        auto runner = std::make_unique<TraceRunner>(
            config, FrameSizeDist::fixed(12), 1, 5);
        // Give every call a distinctive argument so frame contents
        // are meaningful.
        unsigned i = 0;
        for (const TraceOp op : trace) {
            switch (op) {
              case TraceOp::Call:
                runner->machine().pushValue(
                    static_cast<Word>(0x1000 + i % 97));
                runner->call(i % 8);
                break;
              case TraceOp::Return:
                if (runner->depth() > 0) {
                    runner->ret();
                    // Discard the (stale) result slot the trace left.
                    while (runner->machine().stackDepth() > 0)
                        runner->machine().popValue();
                } else {
                    runner->machine().pushValue(
                        static_cast<Word>(0x1000 + i % 97));
                    runner->call(i % 8);
                }
                break;
              case TraceOp::Switch:
                break;
            }
            ++i;
        }
        return runner;
    };

    auto mesa = build(Impl::Mesa);
    auto banked = build(Impl::Banked);

    ASSERT_EQ(mesa->depth(), banked->depth());
    // Compare the argument (var 0) along the whole live chain.
    Addr lf_mesa = mesa->machine().currentFrame();
    Addr lf_banked = banked->machine().currentFrame();
    const SystemLayout &layout = mesa->machine().image().layout();
    for (unsigned level = 0; level < mesa->depth(); ++level) {
        EXPECT_EQ(mesa->machine().inspectVar(lf_mesa, 0),
                  banked->machine().inspectVar(lf_banked, 0))
            << "level " << level;

        auto next = [&](Machine &m, Addr lf) -> Addr {
            // Follow the return stack first, then storage links.
            const auto rs = m.returnStackFrames();
            for (std::size_t i = rs.size(); i-- > 0;) {
                if (i + 1 < rs.size() && rs[i + 1] == lf)
                    return rs[i];
            }
            if (!rs.empty() && lf == m.currentFrame())
                return rs.back();
            Word link = m.memory().peek(lf + frame::returnLinkOffset);
            if (m.banks().bankOf(lf) >= 0)
                link = m.banks().read(m.banks().bankOf(lf),
                                      frame::returnLinkOffset);
            const Context ctx = unpackContext(link, layout);
            return ctx.tag == Context::Tag::Frame ? ctx.framePtr
                                                  : nilAddr;
        };
        lf_mesa = next(mesa->machine(), lf_mesa);
        lf_banked = next(banked->machine(), lf_banked);
        if (lf_mesa == nilAddr || lf_banked == nilAddr)
            break;
    }
}

} // namespace
} // namespace fpc
