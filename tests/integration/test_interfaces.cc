/**
 * @file
 * Interface records (paper §3 and §4).
 *
 * "An interface called IO, for example, might contain procedures
 * Read, Write, and so forth ... the client needs only a pointer to
 * the interface record in order to call any of its procedures. The
 * components of an interface record will be contexts for the various
 * procedures." A call to I.f is encoded as
 * LOADLITERAL i; READFIELD f; XFER (§4) — here LIW/READF/XF.
 */

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "machine/machine.hh"
#include "program/loader.hh"

namespace fpc
{
namespace
{

struct IfaceRig
{
    SystemLayout layout;
    Memory mem{SystemLayout().memWords};
    LoadedImage image;
    Addr ifaceAddr = 0;

    explicit IfaceRig()
    {
        // The implementation module.
        ModuleBuilder impl("IOImpl");
        auto &read = impl.proc("read", 1, 1);
        read.loadLocal(0).loadImm(1).op(isa::Op::ADD).ret(); // x+1
        auto &write = impl.proc("write", 1, 1);
        write.loadLocal(0).loadImm(2).op(isa::Op::MUL).ret(); // x*2

        // The client calls through the interface record: slot 0 =
        // read, slot 1 = write.
        ModuleBuilder client("Client");
        auto &main = client.proc("main", 2, 2); // (iface, x)
        // read(x):
        main.loadLocal(1);
        main.loadLocal(0).op(isa::Op::READF, 0).op(isa::Op::XF);
        main.storeLocal(1);
        // write(read(x)):
        main.loadLocal(1);
        main.loadLocal(0).op(isa::Op::READF, 1).op(isa::Op::XF);
        main.ret();

        Loader loader{layout, SizeClasses::standard()};
        loader.add(impl.build());
        loader.add(client.build());
        image = loader.load(mem, LinkPlan{});

        // Build the interface record in (simulated) static storage:
        // an array of procedure-descriptor contexts, exactly as §3
        // describes. Use two spare words in the global region.
        ifaceAddr = image.gfAddr("Client") + 1; // globals 0 and 1
        mem.poke(ifaceAddr, image.procDescriptor("IOImpl", "read"));
        mem.poke(ifaceAddr + 1,
                 image.procDescriptor("IOImpl", "write"));
    }
};

class InterfaceCalls : public testing::TestWithParam<Impl>
{};

TEST_P(InterfaceCalls, ClientCallsThroughTheRecord)
{
    IfaceRig rig;
    MachineConfig config;
    config.impl = GetParam();
    Machine machine(rig.mem, rig.image, config);
    machine.start("Client", "main",
                  std::array<Word, 2>{static_cast<Word>(rig.ifaceAddr),
                                      Word{20}});
    const RunResult result = machine.run();
    ASSERT_EQ(result.reason, StopReason::TopReturn) << result.message;
    EXPECT_EQ(machine.popValue(), (20 + 1) * 2);

    // Interface calls are raw XFERs to descriptor contexts.
    EXPECT_EQ(machine.stats().xferCount[static_cast<unsigned>(
                  XferKind::Coroutine)],
              2u);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, InterfaceCalls,
                         testing::Values(Impl::Simple, Impl::Mesa,
                                         Impl::Ifu, Impl::Banked),
                         [](const auto &info) {
                             std::string n = implName(info.param);
                             for (auto &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(InterfaceCalls, RebindingSwapsImplementations)
{
    // T2's point: the record can be rebound without touching code.
    IfaceRig rig;
    // Swap read and write in the record.
    const Word read_desc = rig.mem.peek(rig.ifaceAddr);
    rig.mem.poke(rig.ifaceAddr, rig.mem.peek(rig.ifaceAddr + 1));
    rig.mem.poke(rig.ifaceAddr + 1, read_desc);

    Machine machine(rig.mem, rig.image, MachineConfig{});
    machine.start("Client", "main",
                  std::array<Word, 2>{static_cast<Word>(rig.ifaceAddr),
                                      Word{20}});
    ASSERT_EQ(machine.run().reason, StopReason::TopReturn);
    EXPECT_EQ(machine.popValue(), (20 * 2) + 1); // swapped order
}

} // namespace
} // namespace fpc
