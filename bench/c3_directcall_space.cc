/**
 * @file
 * Experiment C3 — D1's space tradeoff for DIRECTCALL (§6).
 *
 * Paper: "The call instruction is larger: four bytes instead of one
 * ... Of course, two bytes of LV entry are saved, so the space is
 * only 30% more if the procedure is called only once from the
 * module." And for SHORTDIRECTCALL: "If this succeeds, the space is
 * the same as in the current scheme for a single call of p from a
 * module, and 50% more (6 bytes instead of 4) for two calls."
 *
 * The analytic table reproduces that arithmetic; the empirical table
 * builds real modules with k call sites to one external procedure
 * and measures the loaded image.
 */

#include <benchmark/benchmark.h>

#include "asm/builder.hh"
#include "bench_util.hh"

using namespace fpc;
using namespace fpc::bench;

namespace
{

void
printAnalytic(JsonReport &json)
{
    std::cout << "D1 — bytes to call procedure p, k sites in one "
                 "module (call sites + LV entry):\n\n";
    stats::Table table({"calls k", "mesa (1-byte EFC + 2-byte LV)",
                        "DFC (4 bytes, no LV)", "DFC vs mesa",
                        "SDFC (3 bytes, no LV)", "SDFC vs mesa"});
    for (unsigned k = 1; k <= 6; ++k) {
        const unsigned mesa = k * 1 + 2;
        const unsigned dfc = k * 4;
        const unsigned sdfc = k * 3;
        auto rel = [&](unsigned v) {
            return stats::percent(
                static_cast<double>(v) / mesa - 1.0, 0);
        };
        table.row(k, mesa, dfc, "+" + rel(dfc), sdfc,
                  (sdfc >= mesa ? "+" : "") + rel(sdfc));
    }
    table.print(std::cout);
    json.table("analytic", table);
    std::cout << "\n(The paper's quotes are the k=1 DFC row, +33% ~ "
                 "\"30% more\", the k=1 SDFC row, equal space, and "
                 "the k=2 SDFC row, 6 bytes vs 4 = +50%.)\n";
}

/** Build caller/callee modules with k external call sites. */
std::vector<Module>
kCallProgram(unsigned k)
{
    ModuleBuilder callee("Lib");
    auto &work = callee.proc("work", 1, 1);
    work.loadLocal(0).ret();

    ModuleBuilder caller("Client");
    const unsigned ext = caller.externRef("Lib", "work");
    auto &main = caller.proc("main", 1, 2);
    for (unsigned i = 0; i < k; ++i) {
        main.loadLocal(0).callExtern(ext).storeLocal(1);
    }
    main.loadLocal(1).ret();

    return {caller.build(), callee.build()};
}

void
printEmpirical(JsonReport &json)
{
    std::cout << "\nMeasured caller-side bytes (call sites + LV) from "
                 "real loaded images:\n\n";
    stats::Table table(
        {"calls k", "mesa bytes", "DFC bytes", "SDFC bytes"});
    for (unsigned k = 1; k <= 6; ++k) {
        std::vector<std::string> row = {std::to_string(k)};
        struct PlanRow
        {
            CallLowering lowering;
            bool shortCalls;
        };
        for (const PlanRow pr :
             {PlanRow{CallLowering::Mesa, false},
              PlanRow{CallLowering::Direct, false},
              PlanRow{CallLowering::Direct, true}}) {
            const SystemLayout layout;
            Memory mem(layout.memWords);
            Loader loader{layout, SizeClasses::standard()};
            for (const auto &m : kCallProgram(k))
                loader.add(m);
            LinkPlan plan;
            plan.lowering = pr.lowering;
            plan.shortCalls = pr.shortCalls;
            const LoadedImage image = loader.load(mem, plan);
            const PlacedModule &client = image.module("Client");
            row.push_back(std::to_string(client.callSiteBytes +
                                         2 * client.lvCount));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    json.table("empirical", table);
}

void
BM_BindKCalls(benchmark::State &state)
{
    const auto modules = kCallProgram(4);
    const SystemLayout layout;
    Memory mem(layout.memWords);
    LinkPlan plan;
    plan.lowering = CallLowering::Direct;
    plan.shortCalls = state.range(0) != 0;
    for (auto _ : state) {
        Loader loader{layout, SizeClasses::standard()};
        for (const auto &m : modules)
            loader.add(m);
        benchmark::DoNotOptimize(loader.load(mem, plan));
    }
}
BENCHMARK(BM_BindKCalls)->Arg(0)->Arg(1);

} // namespace

int
main(int argc, char **argv)
{
    JsonReport json(argc, argv, "c3_directcall_space");
    printAnalytic(json);
    printEmpirical(json);
    json.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
