/**
 * @file
 * Experiment C1 — the headline claim (§1, §6):
 *
 *   "simple Pascal-style calls and returns can be executed as fast as
 *    in the most specialized mechanism. Indeed, they can be as fast
 *    as unconditional jumps at least 95% of the time."
 *
 * A transfer counts as jump-equivalent when it makes zero storage
 * references and needs no IFU redirect — exactly an unconditional
 * jump's cost in this model. The table sweeps workloads and engines;
 * the claim should hold on the I4 machine with 4-8 banks for typical
 * (loop + helper-call) programs, with recursion-heavy code needing
 * the top of the 4-8 bank range, and must *fail* on I1/I2, which is
 * why §6-§7 exist.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

using namespace fpc;
using namespace fpc::bench;

namespace
{

struct Workload
{
    const char *name;
    std::vector<Module> modules;
    std::string module, proc;
    std::vector<Word> args;
};

std::vector<Workload>
workloads()
{
    std::vector<Workload> out;
    out.push_back({"primes (loop+helper)", primesProgram(), "Primes",
                   "main", {200}});
    out.push_back(
        {"fib (deep recursion)", fibProgram(), "Fib", "main", {17}});

    ProgramConfig pc;
    pc.modules = 4;
    pc.procsPerModule = 8;
    pc.maxDepth = 9;
    pc.seed = 5;
    out.push_back({"synthetic call tree", generateProgram(pc),
                   generatedEntryModule(), generatedEntryProc(),
                   {9}});
    return out;
}

void
printFastRates(std::uint64_t timeslice, JsonReport &json)
{
    std::cout
        << "Fraction of calls+returns executed at unconditional-jump "
           "cost (zero storage references, no redirect)";
    if (timeslice)
        std::cout << ", preempting every " << timeslice
                  << " instructions";
    std::cout << ":\n\n";
    stats::Table table({"workload", "impl", "banks", "fast call+ret",
                        "mean cycles/call", "mean cycles/jump-equiv",
                        "cycles total"});

    for (const Workload &w : workloads()) {
        struct Row
        {
            EngineCombo combo;
            unsigned banks;
        };
        for (const Row &row :
             {Row{{Impl::Mesa, CallLowering::Mesa, false}, 0},
              Row{{Impl::Ifu, CallLowering::Direct, true}, 0},
              Row{{Impl::Banked, CallLowering::Direct, true}, 4},
              Row{{Impl::Banked, CallLowering::Direct, true}, 8}}) {
            MachineConfig config = configFor(row.combo);
            if (row.banks)
                config.numBanks = row.banks;
            config.timesliceSteps = timeslice;
            Rig rig(w.modules, planFor(row.combo), config);
            if (timeslice) {
                // Self-switch: each expired slice still runs the full
                // ProcSwitch XFER (return-stack flush, bank writeback).
                rig.machine->setScheduler([](Machine &m) {
                    return m.currentFrameContext();
                });
            }
            runSteadyState(rig, w.module, w.proc, w.args);

            const MachineStats &s = rig.machine->stats();
            double call_cycles = 0;
            CountT calls = 0;
            for (const XferKind kind :
                 {XferKind::ExtCall, XferKind::LocalCall,
                  XferKind::DirectCall, XferKind::FatCall}) {
                const auto &d =
                    s.xferCycles[static_cast<unsigned>(kind)];
                call_cycles += d.total();
                calls += d.count();
            }
            // An unconditional jump costs one decode cycle in this
            // model (the IFU follows it).
            const double jump_cost = config.latency.decodeCycles;

            table.row(w.name, implName(row.combo.impl),
                      row.banks ? std::to_string(row.banks) : "-",
                      stats::percent(s.fastCallReturnRate()),
                      stats::fixed(call_cycles /
                                       std::max<CountT>(1, calls),
                                   2),
                      stats::fixed(jump_cost, 0), s.cycles);
        }
    }
    table.print(std::cout);
    json.table("fast_rates", table);
    std::cout << "\nPaper shape: I2 is never jump-fast; I4 reaches "
                 ">=95% on loop-and-helper code with 4 banks and on "
                 "recursion with ~8 (the paper's \"4-8 banks\" "
                 "range).\n";
}

void
BM_PrimesEndToEnd(benchmark::State &state)
{
    const auto combo = allEngines()[state.range(0)];
    Rig rig(primesProgram(), planFor(combo), configFor(combo));
    for (auto _ : state)
        runToResult(*rig.machine, "Primes", "main", {100});
    state.SetLabel(implName(combo.impl));
}
BENCHMARK(BM_PrimesEndToEnd)->DenseRange(0, 3);

} // namespace

int
main(int argc, char **argv)
try {
    JsonReport json(argc, argv, "c1_call_vs_jump");
    // Strip --timeslice=N before handing argv to google-benchmark.
    std::uint64_t timeslice = 0;
    int argc_out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--timeslice=", 0) == 0)
            timeslice = std::stoull(arg.substr(12));
        else
            argv[argc_out++] = argv[i];
    }
    argc = argc_out;

    printFastRates(timeslice, json);
    json.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
} catch (const std::exception &err) {
    std::cerr << "c1_call_vs_jump: bad flag value (" << err.what()
              << "); expected --timeslice=N\n";
    return 2;
}
