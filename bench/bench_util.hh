/**
 * @file
 * Shared scaffolding for the experiment benches: canned programs,
 * machine rigs, and the main() pattern (print the paper-shape tables,
 * then run the google-benchmark microbenchmarks).
 */

#ifndef FPC_BENCH_BENCH_UTIL_HH
#define FPC_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lang/codegen.hh"
#include "machine/machine.hh"
#include "obs/json.hh"
#include "program/loader.hh"
#include "stats/table.hh"
#include "workload/synthetic.hh"
#include "workload/trace.hh"

namespace fpc::bench
{

/** A loaded image plus a machine, built in one go. */
struct Rig
{
    std::unique_ptr<Memory> mem;
    LoadedImage image;
    std::unique_ptr<Machine> machine;

    Rig(const std::vector<Module> &modules, const LinkPlan &plan,
        const MachineConfig &config)
    {
        const SystemLayout layout;
        mem = std::make_unique<Memory>(layout.memWords);
        Loader loader{layout, SizeClasses::standard()};
        for (const auto &m : modules)
            loader.add(m);
        image = loader.load(*mem, plan);
        machine = std::make_unique<Machine>(*mem, image, config);
    }
};

/** Run Mod.proc(args) to completion; aborts the bench on error. */
inline Word
runToResult(Machine &machine, const std::string &module,
            const std::string &proc, std::vector<Word> args)
{
    machine.start(module, proc, args);
    const RunResult result = machine.run();
    if (result.reason != StopReason::TopReturn) {
        std::cerr << "bench program failed: " << result.message << "\n";
        std::abort();
    }
    return machine.popValue();
}

/** Warm run (fills free lists and caches), reset all statistics,
 *  then a measured run — boot effects excluded. */
inline Word
runSteadyState(Rig &rig, const std::string &module,
               const std::string &proc, std::vector<Word> args)
{
    runToResult(*rig.machine, module, proc, args);
    rig.machine->resetStats();
    rig.machine->heap().resetStats();
    rig.mem->resetStats();
    return runToResult(*rig.machine, module, proc, std::move(args));
}

/** The standard MiniMesa benchmark program: call-dense, loopy. */
inline std::vector<Module>
primesProgram()
{
    return lang::compile(R"(
        module Primes;
        var count;
        proc isPrime(n) {
            var d;
            if (n < 2) { return 0; }
            d = 2;
            while (d * d <= n) {
                if (n % d == 0) { return 0; }
                d = d + 1;
            }
            return 1;
        }
        proc main(limit) {
            var i;
            i = 2;
            while (i < limit) {
                if (isPrime(i)) { count = count + 1; }
                i = i + 1;
            }
            return count;
        }
    )");
}

/** A recursion-heavy program (deep LIFO chains). */
inline std::vector<Module>
fibProgram()
{
    return lang::compile(R"(
        module Fib;
        proc fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        proc main(n) { return fib(n); }
    )");
}

/** Strip --<name>=<uint> from argv (so google-benchmark never sees
 *  it) and return its value, or fallback when absent. */
inline unsigned
stripUintFlag(int &argc, char **argv, const std::string &name,
              unsigned fallback)
{
    unsigned value = fallback;
    const std::string prefix = "--" + name + "=";
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0) {
            value = static_cast<unsigned>(
                std::strtoul(arg.c_str() + prefix.size(), nullptr, 10));
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    return value;
}

/**
 * Min-of-N wall-clock timing: run fn() `repeat` times and return the
 * fastest wall-clock seconds. The minimum — not the mean — is the
 * stable statistic for host time: interference (scheduling, frequency
 * excursions, cache pollution from neighbors) only ever adds time, so
 * the fastest repetition is the best estimate of the undisturbed cost,
 * and the one worth gating on.
 */
template <typename Fn>
inline double
minWallSeconds(unsigned repeat, Fn &&fn)
{
    using clock = std::chrono::steady_clock;
    double best = 0.0;
    if (repeat == 0)
        repeat = 1;
    for (unsigned r = 0; r < repeat; ++r) {
        const auto t0 = clock::now();
        fn();
        const std::chrono::duration<double> dt = clock::now() - t0;
        if (r == 0 || dt.count() < best)
            best = dt.count();
    }
    return best;
}

/** Plan/config pairs for the four implementations. */
struct EngineCombo
{
    Impl impl;
    CallLowering lowering;
    bool shortCalls;
};

inline std::vector<EngineCombo>
allEngines()
{
    return {
        {Impl::Simple, CallLowering::Fat, false},
        {Impl::Mesa, CallLowering::Mesa, false},
        {Impl::Ifu, CallLowering::Direct, true},
        {Impl::Banked, CallLowering::Direct, true},
    };
}

inline LinkPlan
planFor(const EngineCombo &combo)
{
    LinkPlan plan;
    plan.lowering = combo.lowering;
    plan.shortCalls = combo.shortCalls;
    return plan;
}

inline MachineConfig
configFor(const EngineCombo &combo)
{
    MachineConfig config;
    config.impl = combo.impl;
    return config;
}

/**
 * The shared bench --json=<path> emitter ("fpc-bench-v1"): every bench
 * constructs one before benchmark::Initialize (which rejects unknown
 * flags), registers its paper-shape tables and headline metrics, and
 * calls write() before handing over to google-benchmark. Without
 * --json= it is inert.
 */
class JsonReport
{
  public:
    /** Strips --json=<path> out of argv so google-benchmark never
     *  sees it. */
    JsonReport(int &argc, char **argv, std::string bench_name)
        : bench_(std::move(bench_name))
    {
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--json=", 0) == 0)
                path_ = arg.substr(7);
            else
                argv[out++] = argv[i];
        }
        argc = out;
    }

    bool enabled() const { return !path_.empty(); }

    /** Record a printed stats::Table under a stable key. */
    void
    table(const std::string &key, const stats::Table &t)
    {
        if (!enabled())
            return;
        tables_.emplace_back(key, t);
    }

    void
    metric(const std::string &key, double v)
    {
        if (enabled())
            metrics_[key] = v;
    }

    void
    note(const std::string &key, const std::string &text)
    {
        if (enabled())
            notes_[key] = text;
    }

    /** Record a histogram's interpolated percentiles as metrics
     *  (<key>_p50 / _p90 / _p99). */
    void
    histogram(const std::string &key, const stats::Histogram &h)
    {
        metric(key + "_p50", h.p50());
        metric(key + "_p90", h.p90());
        metric(key + "_p99", h.p99());
    }

    /** Write the document; aborts the bench if the path is bad. */
    void
    write() const
    {
        if (!enabled())
            return;
        std::ofstream out(path_);
        if (!out) {
            std::cerr << bench_ << ": cannot write " << path_ << "\n";
            std::abort();
        }
        obs::JsonWriter w(out);
        w.beginObject();
        w.kv("schema", "fpc-bench-v1");
        w.kv("bench", bench_);
        w.key("tables").beginObject();
        for (const auto &[key, t] : tables_) {
            w.key(key).beginObject();
            w.key("headers").beginArray();
            for (const std::string &h : t.headers())
                w.value(h);
            w.endArray();
            w.key("rows").beginArray();
            for (const auto &row : t.cells()) {
                w.beginArray();
                for (const std::string &cell : row)
                    w.value(cell);
                w.endArray();
            }
            w.endArray();
            w.endObject();
        }
        w.endObject();
        w.key("metrics").beginObject();
        for (const auto &[key, v] : metrics_)
            w.kv(key, v);
        w.endObject();
        w.key("notes").beginObject();
        for (const auto &[key, text] : notes_)
            w.kv(key, text);
        w.endObject();
        w.endObject();
        out << "\n";
    }

  private:
    std::string bench_;
    std::string path_;
    std::vector<std::pair<std::string, stats::Table>> tables_;
    std::map<std::string, double> metrics_;
    std::map<std::string, std::string> notes_;
};

} // namespace fpc::bench

#endif // FPC_BENCH_BENCH_UTIL_HH
