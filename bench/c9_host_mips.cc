/**
 * @file
 * Experiment C9 — host-side execution throughput.
 *
 * Unlike C1–C8, which report *simulated* costs (cycles, storage
 * references), C9 measures the wall-clock speed of the simulator
 * itself: simulated instructions per second and XFERs per second for
 * each engine I1–I4, with the host acceleration layer (predecoded
 * icache + XFER link cache + dispatch fast path, docs/PERFORMANCE.md)
 * off and on. The acceleration contract makes this a pure host
 * experiment: every simulated number is bit-identical either way, so
 * the speedup column is free — no accuracy was traded for it.
 *
 * The workload is C1's call-heavy primes program, the shape the paper
 * optimizes for (a call per loop iteration), so the XFER link cache
 * and icache are both on the hot path. Host times are min-of-N
 * (--repeat=N, default 3) over interleaved off/on repetitions:
 * interference only ever adds time, so the fastest repetition
 * estimates the undisturbed cost, and interleaving keeps a noise
 * burst from landing on only one side of the ratio.
 */

#include <benchmark/benchmark.h>

#include <utility>

#include "bench_util.hh"

using namespace fpc;
using namespace fpc::bench;

namespace
{

constexpr Word primesLimit = 2000;

struct Measurement
{
    double seconds = 0;        ///< min-of-N wall time of one run
    std::uint64_t steps = 0;   ///< simulated instructions per run
    CountT xfers = 0;          ///< transfers per run
    AccelStats accel;          ///< steady-state cache counters
};

/** One warmed, stats-reset rig ready for timed runs. */
std::unique_ptr<Rig>
warmRig(const EngineCombo &combo, bool accel_on)
{
    MachineConfig config = configFor(combo);
    config.accel.enabled = accel_on;
    auto rig = std::make_unique<Rig>(primesProgram(), planFor(combo),
                                     config);
    // Warm run: fills the frame free lists and the host caches, then
    // reset so the measured runs (and their hit rates) are steady
    // state.
    runToResult(*rig->machine, "Primes", "main", {primesLimit});
    rig->machine->resetStats();
    rig->machine->heap().resetStats();
    rig->mem->resetStats();
    return rig;
}

/**
 * Measure accel-off and accel-on together, interleaving the timed
 * repetitions (off, on, off, on, ...). Host interference comes in
 * bursts that last longer than one repetition, so timing all-off then
 * all-on lets a burst land on one side only and skew the ratio;
 * adjacent off/on samples see the same conditions, and min-of-N then
 * picks both sides' quiet-window cost.
 */
std::pair<Measurement, Measurement>
measurePair(const EngineCombo &combo, unsigned repeat)
{
    auto off = warmRig(combo, false);
    auto on = warmRig(combo, true);

    // One counted run each for the per-run denominators
    // (deterministic, so any run's counts serve for every repetition).
    Measurement m_off, m_on;
    runToResult(*off->machine, "Primes", "main", {primesLimit});
    m_off.steps = off->machine->stats().steps;
    m_off.xfers = off->machine->stats().totalXfers();
    runToResult(*on->machine, "Primes", "main", {primesLimit});
    m_on.steps = on->machine->stats().steps;
    m_on.xfers = on->machine->stats().totalXfers();

    using clock = std::chrono::steady_clock;
    auto timedRun = [](Rig &rig) {
        const auto t0 = clock::now();
        runToResult(*rig.machine, "Primes", "main", {primesLimit});
        const std::chrono::duration<double> dt = clock::now() - t0;
        return dt.count();
    };
    if (repeat == 0)
        repeat = 1;
    for (unsigned r = 0; r < repeat; ++r) {
        const double t_off = timedRun(*off);
        const double t_on = timedRun(*on);
        if (r == 0 || t_off < m_off.seconds)
            m_off.seconds = t_off;
        if (r == 0 || t_on < m_on.seconds)
            m_on.seconds = t_on;
    }
    m_on.accel = on->machine->accelStats();
    return {m_off, m_on};
}

void
printHostThroughput(unsigned repeat, JsonReport &json)
{
    std::cout << "Host execution throughput on the C1 call-heavy "
                 "workload (primes " << primesLimit << "), min of "
              << repeat << " runs:\n\n";
    stats::Table table({"impl", "accel", "wall ms", "sim Minst/s",
                        "XFER/s", "speedup", "icache hit",
                        "link hit"});

    double min_speedup = 0;
    bool first = true;
    for (const EngineCombo &combo : allEngines()) {
        const auto [off, on] = measurePair(combo, repeat);
        const double speedup = off.seconds / on.seconds;

        table.row(implName(combo.impl), "off",
                  stats::fixed(off.seconds * 1e3, 2),
                  stats::fixed(off.steps / off.seconds / 1e6, 1),
                  stats::fixed(off.xfers / off.seconds, 0), "-", "-",
                  "-");
        table.row(implName(combo.impl), "on",
                  stats::fixed(on.seconds * 1e3, 2),
                  stats::fixed(on.steps / on.seconds / 1e6, 1),
                  stats::fixed(on.xfers / on.seconds, 0),
                  stats::fixed(speedup, 2),
                  stats::percent(on.accel.icacheHitRate()),
                  stats::percent(on.accel.linkHitRate()));

        const std::string impl = implName(combo.impl);
        json.metric("speedup_" + impl, speedup);
        json.metric("sim_mips_off_" + impl,
                    off.steps / off.seconds / 1e6);
        json.metric("sim_mips_on_" + impl,
                    on.steps / on.seconds / 1e6);
        json.metric("xfers_per_sec_on_" + impl, on.xfers / on.seconds);
        json.metric("icache_hit_rate_" + impl,
                    on.accel.icacheHitRate());
        json.metric("link_hit_rate_" + impl, on.accel.linkHitRate());
        if (first || speedup < min_speedup)
            min_speedup = speedup;
        first = false;
    }
    table.print(std::cout);
    json.table("host_throughput", table);
    json.metric("min_speedup", min_speedup);
    json.metric("repeat", repeat);
    json.note("contract",
              "simulated numbers are bit-identical with accel on/off; "
              "this table is host wall-clock only");

    std::cout << "\nAcceptance shape: accel-on >= 2x accel-off on "
                 "every engine, with icache and link-cache hit rates "
                 "above 90% at steady state.\n";
}

void
BM_HostPrimes(benchmark::State &state)
{
    const EngineCombo combo = allEngines()[3]; // I4-banked
    MachineConfig config = configFor(combo);
    config.accel.enabled = state.range(0) != 0;
    Rig rig(primesProgram(), planFor(combo), config);
    for (auto _ : state)
        runToResult(*rig.machine, "Primes", "main", {200});
    state.SetLabel(config.accel.enabled ? "accel-on" : "accel-off");
}
BENCHMARK(BM_HostPrimes)->DenseRange(0, 1);

} // namespace

int
main(int argc, char **argv)
try {
    JsonReport json(argc, argv, "c9_host_mips");
    const unsigned repeat = stripUintFlag(argc, argv, "repeat", 3);

    printHostThroughput(repeat, json);
    json.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
} catch (const std::exception &err) {
    std::cerr << "c9_host_mips: bad flag value (" << err.what()
              << "); expected --repeat=N\n";
    return 2;
}
