/**
 * @file
 * Experiment C9 — host-side execution throughput.
 *
 * Unlike C1–C8, which report *simulated* costs (cycles, storage
 * references), C9 measures the wall-clock speed of the simulator
 * itself: simulated instructions per second and XFERs per second for
 * each engine I1–I4, across the three host backends — the eager loop
 * (accel=off), the burst loop over the predecoded icache + XFER link
 * caches (accel=on), and the threaded-code superblock interpreter
 * (accel=threaded, docs/PERFORMANCE.md). The acceleration contract
 * makes this a pure host experiment: every simulated number is
 * bit-identical in all three modes, so the speedup columns are free —
 * no accuracy was traded for them.
 *
 * The workload is C1's call-heavy primes program, the shape the paper
 * optimizes for (a call per loop iteration), so the XFER link cache,
 * the superblock chain, and the icache are all on the hot path. Host
 * times are min-of-N (--repeat=N, default 3) over interleaved
 * off/on/threaded repetitions: interference only ever adds time, so
 * the fastest repetition estimates the undisturbed cost, and
 * interleaving keeps a noise burst from landing on only one side of a
 * ratio.
 */

#include <benchmark/benchmark.h>

#include <array>

#include "bench_util.hh"
#include "obs/probes.hh"
#include "obs/sampled_profile.hh"
#include "obs/telemetry.hh"

using namespace fpc;
using namespace fpc::bench;

namespace
{

constexpr Word primesLimit = 2000;

/** The three host execution backends (same simulated numbers). */
enum class Backend
{
    Off,      ///< eager per-step loop
    On,       ///< burst loop, icache + link caches
    Threaded, ///< computed-goto superblocks
};

constexpr std::array<Backend, 3> allBackends = {
    Backend::Off, Backend::On, Backend::Threaded};

const char *
backendName(Backend backend)
{
    switch (backend) {
      case Backend::Off: return "off";
      case Backend::On: return "on";
      case Backend::Threaded: return "threaded";
      default: return "?";
    }
}

struct Measurement
{
    double seconds = 0;      ///< min-of-N wall time of one run
    std::uint64_t steps = 0; ///< simulated instructions per run
    CountT xfers = 0;        ///< transfers per run
    AccelStats accel;        ///< steady-state cache counters
};

/** One warmed, stats-reset rig ready for timed runs. */
std::unique_ptr<Rig>
warmRig(const EngineCombo &combo, Backend backend)
{
    MachineConfig config = configFor(combo);
    config.accel.enabled = backend != Backend::Off;
    config.accel.threaded = backend == Backend::Threaded;
    auto rig = std::make_unique<Rig>(primesProgram(), planFor(combo),
                                     config);
    // Warm run: fills the frame free lists and the host caches, then
    // reset so the measured runs (and their hit rates) are steady
    // state.
    runToResult(*rig->machine, "Primes", "main", {primesLimit});
    rig->machine->resetStats();
    rig->machine->heap().resetStats();
    rig->mem->resetStats();
    return rig;
}

/**
 * Measure all backends together, interleaving the timed repetitions
 * (off, on, threaded, off, on, threaded, ...). Host interference
 * comes in bursts that last longer than one repetition, so timing
 * all-off then all-on lets a burst land on one side only and skew the
 * ratio; adjacent samples see the same conditions, and min-of-N then
 * picks every side's quiet-window cost.
 */
std::array<Measurement, 3>
measureBackends(const EngineCombo &combo, unsigned repeat)
{
    std::array<std::unique_ptr<Rig>, 3> rigs;
    std::array<Measurement, 3> m;
    for (std::size_t i = 0; i < allBackends.size(); ++i) {
        rigs[i] = warmRig(combo, allBackends[i]);
        // One counted run for the per-run denominators (deterministic,
        // so any run's counts serve for every repetition).
        runToResult(*rigs[i]->machine, "Primes", "main", {primesLimit});
        m[i].steps = rigs[i]->machine->stats().steps;
        m[i].xfers = rigs[i]->machine->stats().totalXfers();
    }

    using clock = std::chrono::steady_clock;
    auto timedRun = [](Rig &rig) {
        const auto t0 = clock::now();
        runToResult(*rig.machine, "Primes", "main", {primesLimit});
        const std::chrono::duration<double> dt = clock::now() - t0;
        return dt.count();
    };
    if (repeat == 0)
        repeat = 1;
    for (unsigned r = 0; r < repeat; ++r) {
        for (std::size_t i = 0; i < rigs.size(); ++i) {
            const double t = timedRun(*rigs[i]);
            if (r == 0 || t < m[i].seconds)
                m[i].seconds = t;
        }
    }
    for (std::size_t i = 0; i < rigs.size(); ++i)
        m[i].accel = rigs[i]->machine->accelStats();
    return m;
}

void
printHostThroughput(unsigned repeat, JsonReport &json)
{
    std::cout << "Host execution throughput on the C1 call-heavy "
                 "workload (primes " << primesLimit << "), min of "
              << repeat << " runs:\n\n";
    stats::Table table({"impl", "accel", "wall ms", "sim Minst/s",
                        "XFER/s", "speedup", "icache hit",
                        "link hit"});
    stats::Table dispatch({"impl", "eager ns/inst", "burst ns/inst",
                           "threaded ns/inst", "burst/thr"});
    stats::Table sblocks({"impl", "builds", "execs", "chain hits",
                          "chain rate"});

    double min_speedup = 0;
    double min_thr_speedup = 0;
    double min_thr_vs_on = 0;
    bool first = true;
    for (const EngineCombo &combo : allEngines()) {
        const auto m = measureBackends(combo, repeat);
        const Measurement &off = m[0];
        const Measurement &on = m[1];
        const Measurement &thr = m[2];
        const double speedup = off.seconds / on.seconds;
        const double thr_speedup = off.seconds / thr.seconds;
        const double thr_vs_on = on.seconds / thr.seconds;

        table.row(implName(combo.impl), "off",
                  stats::fixed(off.seconds * 1e3, 2),
                  stats::fixed(off.steps / off.seconds / 1e6, 1),
                  stats::fixed(off.xfers / off.seconds, 0), "-", "-",
                  "-");
        table.row(implName(combo.impl), "on",
                  stats::fixed(on.seconds * 1e3, 2),
                  stats::fixed(on.steps / on.seconds / 1e6, 1),
                  stats::fixed(on.xfers / on.seconds, 0),
                  stats::fixed(speedup, 2),
                  stats::percent(on.accel.icacheHitRate()),
                  stats::percent(on.accel.linkHitRate()));
        table.row(implName(combo.impl), "threaded",
                  stats::fixed(thr.seconds * 1e3, 2),
                  stats::fixed(thr.steps / thr.seconds / 1e6, 1),
                  stats::fixed(thr.xfers / thr.seconds, 0),
                  stats::fixed(thr_speedup, 2),
                  stats::percent(thr.accel.icacheHitRate()),
                  stats::percent(thr.accel.linkHitRate()));

        // Dispatch cost: the per-instruction host price of each loop.
        const double eager_ns = off.seconds / off.steps * 1e9;
        const double burst_ns = on.seconds / on.steps * 1e9;
        const double thr_ns = thr.seconds / thr.steps * 1e9;
        dispatch.row(implName(combo.impl), stats::fixed(eager_ns, 2),
                     stats::fixed(burst_ns, 2), stats::fixed(thr_ns, 2),
                     stats::fixed(burst_ns / thr_ns, 2));

        const AccelStats &ta = thr.accel;
        const double chain_rate =
            ta.sblockExecs > 0
                ? static_cast<double>(ta.sblockChainHits) /
                      ta.sblockExecs
                : 0.0;
        sblocks.row(implName(combo.impl), ta.sblockBuilds,
                    ta.sblockExecs, ta.sblockChainHits,
                    stats::percent(chain_rate));

        const std::string impl = implName(combo.impl);
        json.metric("speedup_" + impl, speedup);
        json.metric("speedup_threaded_" + impl, thr_speedup);
        json.metric("threaded_vs_on_" + impl, thr_vs_on);
        json.metric("sim_mips_off_" + impl,
                    off.steps / off.seconds / 1e6);
        json.metric("sim_mips_on_" + impl,
                    on.steps / on.seconds / 1e6);
        json.metric("sim_mips_threaded_" + impl,
                    thr.steps / thr.seconds / 1e6);
        json.metric("xfers_per_sec_on_" + impl, on.xfers / on.seconds);
        json.metric("icache_hit_rate_" + impl,
                    on.accel.icacheHitRate());
        json.metric("link_hit_rate_" + impl, on.accel.linkHitRate());
        json.metric("sblock_chain_rate_" + impl, chain_rate);
        if (first || speedup < min_speedup)
            min_speedup = speedup;
        if (first || thr_speedup < min_thr_speedup)
            min_thr_speedup = thr_speedup;
        if (first || thr_vs_on < min_thr_vs_on)
            min_thr_vs_on = thr_vs_on;
        first = false;
    }
    table.print(std::cout);
    std::cout << "\nDispatch cost (host ns per simulated "
                 "instruction):\n\n";
    dispatch.print(std::cout);
    std::cout << "\nSuperblock cache at steady state:\n\n";
    sblocks.print(std::cout);
    json.table("host_throughput", table);
    json.table("dispatch_cost", dispatch);
    json.table("superblocks", sblocks);
    json.metric("min_speedup", min_speedup);
    json.metric("min_speedup_threaded", min_thr_speedup);
    json.metric("min_threaded_vs_on", min_thr_vs_on);
    json.metric("repeat", repeat);
    json.note("contract",
              "simulated numbers are bit-identical with accel "
              "off/on/threaded; these tables are host wall-clock only");

    std::cout << "\nAcceptance shape: accel-on >= 2x accel-off and "
                 "accel-threaded >= 2x accel-on (>= 4x accel-off) on "
                 "every engine, with icache, link-cache, and "
                 "superblock-chain hit rates above 90% at steady "
                 "state.\n";
}

/** The three observability states the obs_overhead table compares on
 *  the threaded backend. */
enum class ObsState
{
    Unobserved, ///< no observer at all
    Sampled,    ///< boundary-sampling profiler + sampled telemetry
    Exact,      ///< exact telemetry sampler (forces the eager loop)
};

constexpr std::array<ObsState, 3> allObsStates = {
    ObsState::Unobserved, ObsState::Sampled, ObsState::Exact};

/**
 * Observability overhead: wall time of the threaded backend with no
 * observer, with full sampled observability (profiler + telemetry via
 * the BoundaryFanout, default 9973-cycle budget), and with the exact
 * telemetry sampler — which forces the eager loop and so prices what
 * `--telemetry-mode=sampled` buys back. Same interleaved min-of-N
 * discipline as the throughput tables.
 */
void
printObsOverhead(unsigned repeat, JsonReport &json)
{
    std::cout << "\nObservability overhead on the threaded backend "
                 "(primes " << primesLimit << "), min of " << repeat
              << " runs:\n\n";
    stats::Table table({"impl", "unobserved ms", "sampled ms",
                        "exact ms", "sampled retention",
                        "exact retention"});

    constexpr Tick sampleInterval = 9973;
    double min_retention = 0;
    bool first = true;
    for (const EngineCombo &combo : allEngines()) {
        // A single primes run is sub-millisecond, where host cache
        // and layout luck swamp the few-percent effect under
        // measurement; five back-to-back runs per timed repetition
        // integrate it out. Rigs are rebuilt every repetition —
        // allocation layout luck sticks to a rig for its whole life,
        // so reusing one rig across repetitions would bake a bad
        // placement into every sample and min-of-N could not shed it.
        constexpr unsigned innerReps = 5;
        using clock = std::chrono::steady_clock;
        std::array<double, 3> secs{};
        if (repeat == 0)
            repeat = 1;
        for (unsigned r = 0; r < repeat; ++r) {
            for (std::size_t i = 0; i < allObsStates.size(); ++i) {
                // Every state *requests* the threaded backend — the
                // machine demotes to the eager loop itself when the
                // exact sampler attaches, which is precisely the cost
                // being measured.
                MachineConfig config = configFor(combo);
                config.accel.enabled = true;
                config.accel.threaded = true;
                Rig rig(primesProgram(), planFor(combo), config);
                std::optional<obs::SampledProfiler> profiler;
                std::optional<obs::Telemetry> telemetry;
                obs::BoundaryFanout fan;
                switch (allObsStates[i]) {
                  case ObsState::Unobserved:
                    break;
                  case ObsState::Sampled:
                    profiler.emplace(rig.image);
                    telemetry.emplace();
                    fan.add(&*profiler, sampleInterval);
                    fan.add(&*telemetry, sampleInterval);
                    rig.machine->setBoundarySampler(
                        &fan, fan.machineInterval());
                    break;
                  case ObsState::Exact:
                    telemetry.emplace();
                    rig.machine->setSampler(&*telemetry,
                                            sampleInterval);
                    break;
                }
                // Warm run: frame free lists + host caches.
                runToResult(*rig.machine, "Primes", "main",
                            {primesLimit});
                const auto t0 = clock::now();
                for (unsigned k = 0; k < innerReps; ++k)
                    runToResult(*rig.machine, "Primes", "main",
                                {primesLimit});
                const std::chrono::duration<double> dt =
                    clock::now() - t0;
                if (r == 0 || dt.count() < secs[i])
                    secs[i] = dt.count();
            }
        }

        const double sampled_retention = secs[0] / secs[1];
        const double exact_retention = secs[0] / secs[2];
        table.row(implName(combo.impl),
                  stats::fixed(secs[0] * 1e3, 2),
                  stats::fixed(secs[1] * 1e3, 2),
                  stats::fixed(secs[2] * 1e3, 2),
                  stats::percent(sampled_retention),
                  stats::percent(exact_retention));

        const std::string impl = implName(combo.impl);
        json.metric("sampled_retention_" + impl, sampled_retention);
        json.metric("exact_retention_" + impl, exact_retention);
        if (first || sampled_retention < min_retention)
            min_retention = sampled_retention;
        first = false;
    }
    table.print(std::cout);
    json.table("obs_overhead", table);
    json.metric("min_sampled_retention", min_retention);

    std::cout << "\nAcceptance shape: full sampled observability "
                 "(--profile-sampled --telemetry-mode=sampled) "
                 "retains >= 90% of unobserved threaded throughput; "
                 "exact observation pays the eager loop.\n";
}

/** The probe states the probe_overhead table compares on the
 *  threaded backend. */
enum class ProbeState
{
    Unprobed, ///< no probe sink at all
    Probed,   ///< one hot procedure probed (selective deopt)
    AllProbed ///< every procedure probed (upper bound on the cost)
};

constexpr std::array<ProbeState, 3> allProbeStates = {
    ProbeState::Unprobed, ProbeState::Probed, ProbeState::AllProbed};

/** A workload where instruction volume and call frequency separate:
 *  kernel() holds ~95% of the instructions, tick() is called every
 *  outer iteration (a hot probe target) but is three instructions
 *  long. Probing tick() deopts only tick's superblocks, so the
 *  retention column prices exactly what selective deopt promises:
 *  unprobed code keeps threaded speed. */
inline std::vector<Module>
probeWorkload()
{
    return lang::compile(R"(
        module Work;
        var acc;
        proc kernel(n) {
            var i;
            i = 0;
            while (i < n) {
                acc = acc + i;
                i = i + 1;
            }
            return acc;
        }
        proc tick(x) { return x + 1; }
        proc main(reps) {
            var r;
            r = 0;
            while (r < reps) {
                acc = kernel(400);
                acc = tick(acc);
                r = r + 1;
            }
            return acc;
        }
    )");
}

/**
 * Probe overhead: wall time of the threaded backend with no probes,
 * with one hot procedure probed ('entry:Work.tick ->
 * quantize(cycles)' — only tick's superblocks deopt to the eager
 * path), and with every procedure probed (the upper bound selective
 * deopt avoids). Probes charge zero simulated cycles; this table is
 * the host-side price. Same rebuilt-rig, interleaved min-of-N
 * discipline as the obs_overhead table.
 */
void
printProbeOverhead(unsigned repeat, JsonReport &json)
{
    constexpr Word workReps = 600;
    std::cout << "\nDynamic-probe overhead on the threaded backend "
                 "(kernel-heavy workload, tick() probed), min of "
              << repeat << " runs:\n\n";
    stats::Table table({"impl", "unprobed ms", "probed ms",
                        "all-probed ms", "retention",
                        "all-probed retention"});

    obs::ProbeRegistry hotRegistry;
    obs::ProbeRegistry allRegistry;
    {
        std::string err;
        if (!obs::attachProbeSpecs(
                hotRegistry,
                {"entry:Work.tick -> quantize(cycles)"}, err) ||
            !obs::attachProbeSpecs(
                allRegistry, {"entry:Work.* -> quantize(cycles)"},
                err))
            throw std::runtime_error("probe spec: " + err);
    }

    double min_retention = 0;
    bool first = true;
    for (const EngineCombo &combo : allEngines()) {
        constexpr unsigned innerReps = 5;
        using clock = std::chrono::steady_clock;
        std::array<double, 3> secs{};
        if (repeat == 0)
            repeat = 1;
        for (unsigned r = 0; r < repeat; ++r) {
            for (std::size_t i = 0; i < allProbeStates.size(); ++i) {
                MachineConfig config = configFor(combo);
                config.accel.enabled = true;
                config.accel.threaded = true;
                Rig rig(probeWorkload(), planFor(combo), config);
                obs::ProbeRegistry *registry = nullptr;
                switch (allProbeStates[i]) {
                  case ProbeState::Unprobed:
                    break;
                  case ProbeState::Probed:
                    registry = &hotRegistry;
                    break;
                  case ProbeState::AllProbed:
                    registry = &allRegistry;
                    break;
                }
                std::optional<obs::ProbeEngine> engine;
                if (registry != nullptr) {
                    engine.emplace(registry->snapshot(), rig.image,
                                   "", 0);
                    rig.machine->setProbeSink(&*engine,
                                              engine->armedRanges());
                }
                // Warm run: frame free lists + host caches (the
                // armed superblock set reaches steady state here).
                runToResult(*rig.machine, "Work", "main", {workReps});
                const auto t0 = clock::now();
                for (unsigned k = 0; k < innerReps; ++k)
                    runToResult(*rig.machine, "Work", "main",
                                {workReps});
                const std::chrono::duration<double> dt =
                    clock::now() - t0;
                if (r == 0 || dt.count() < secs[i])
                    secs[i] = dt.count();
            }
        }

        const double retention = secs[0] / secs[1];
        const double all_retention = secs[0] / secs[2];
        table.row(implName(combo.impl),
                  stats::fixed(secs[0] * 1e3, 2),
                  stats::fixed(secs[1] * 1e3, 2),
                  stats::fixed(secs[2] * 1e3, 2),
                  stats::percent(retention),
                  stats::percent(all_retention));

        const std::string impl = implName(combo.impl);
        json.metric("probe_retention_" + impl, retention);
        json.metric("all_probed_retention_" + impl, all_retention);
        if (first || retention < min_retention)
            min_retention = retention;
        first = false;
    }
    table.print(std::cout);
    json.table("probe_overhead", table);
    json.metric("min_probe_retention", min_retention);

    std::cout << "\nAcceptance shape: with one hot procedure probed, "
                 "unprobed code retains >= 90% of unprobed threaded "
                 "throughput (selective deopt); probing every "
                 "procedure prices what that selectivity avoids.\n";
}

void
BM_HostPrimes(benchmark::State &state)
{
    const EngineCombo combo = allEngines()[3]; // I4-banked
    const auto backend = static_cast<Backend>(state.range(0));
    MachineConfig config = configFor(combo);
    config.accel.enabled = backend != Backend::Off;
    config.accel.threaded = backend == Backend::Threaded;
    Rig rig(primesProgram(), planFor(combo), config);
    for (auto _ : state)
        runToResult(*rig.machine, "Primes", "main", {200});
    state.SetLabel(std::string("accel-") + backendName(backend));
}
BENCHMARK(BM_HostPrimes)->DenseRange(0, 2);

} // namespace

int
main(int argc, char **argv)
try {
    JsonReport json(argc, argv, "c9_host_mips");
    const unsigned repeat = stripUintFlag(argc, argv, "repeat", 3);

    printHostThroughput(repeat, json);
    printObsOverhead(repeat, json);
    printProbeOverhead(repeat, json);
    json.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
} catch (const std::exception &err) {
    std::cerr << "c9_host_mips: bad flag value (" << err.what()
              << "); expected --repeat=N\n";
    return 2;
}
