/**
 * @file
 * Experiment C6 — encoding compactness and call density.
 *
 * Paper claims:
 *  - "about two-thirds of the instructions compiled for a large
 *    sample of source programs occupy a single byte" (§5);
 *  - "one call or return for every 10 instructions executed is not
 *    uncommon" (§1).
 *
 * Static histogram over the loaded images (by disassembling every
 * procedure body) and dynamic histogram from execution.
 */

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.hh"
#include "isa/disasm.hh"

using namespace fpc;
using namespace fpc::bench;

namespace
{

struct LenHist
{
    std::array<CountT, 7> byLen{};
    CountT total = 0;

    void
    add(unsigned len, CountT n = 1)
    {
        if (len < byLen.size()) {
            byLen[len] += n;
            total += n;
        }
    }

    double
    fraction(unsigned len) const
    {
        return total ? static_cast<double>(byLen[len]) / total : 0;
    }

    double
    meanBytes() const
    {
        double sum = 0;
        for (unsigned l = 1; l < byLen.size(); ++l)
            sum += static_cast<double>(l) * byLen[l];
        return total ? sum / total : 0;
    }
};

LenHist
staticHistogram(const Rig &rig, Memory &mem)
{
    LenHist hist;
    for (const auto &pm : rig.image.modules()) {
        for (const auto &pp : pm.procs) {
            std::vector<std::uint8_t> bytes;
            bytes.reserve(pp.bodyBytes);
            for (unsigned i = 0; i < pp.bodyBytes; ++i)
                bytes.push_back(
                    mem.peekByte(pp.prologueAddr + pp.prologueBytes +
                                 i));
            for (const auto &line : isa::disassemble(bytes))
                hist.add(line.inst.length);
        }
    }
    return hist;
}

void
printDensity(JsonReport &json)
{
    std::cout << "Instruction-length distribution and call density "
                 "(paper: ~2/3 single-byte; ~1 call per 10 executed "
                 "instructions):\n\n";
    stats::Table table({"program", "view", "1 byte", "2 bytes",
                        "3+ bytes", "mean bytes/inst",
                        "instr per call+ret"});

    struct Prog
    {
        const char *name;
        std::vector<Module> modules;
        std::string module, proc;
        std::vector<Word> args;
    };
    ProgramConfig pc;
    pc.modules = 6;
    pc.procsPerModule = 10;
    pc.maxDepth = 8;
    pc.computeOpsPerCall = 6;
    pc.seed = 9;

    for (Prog &prog : std::vector<Prog>{
             {"primes (MiniMesa)", primesProgram(), "Primes", "main",
              {300}},
             {"fib (MiniMesa)", fibProgram(), "Fib", "main", {16}},
             {"synthetic", generateProgram(pc),
              generatedEntryModule(), generatedEntryProc(), {8}}}) {
        Rig rig(prog.modules, LinkPlan{}, MachineConfig{});

        const LenHist stat = staticHistogram(rig, *rig.mem);
        table.row(prog.name, "static", stats::percent(stat.fraction(1)),
                  stats::percent(stat.fraction(2)),
                  stats::percent(std::max(
                      0.0, 1 - stat.fraction(1) - stat.fraction(2))),
                  stats::fixed(stat.meanBytes(), 2), "-");

        runSteadyState(rig, prog.module, prog.proc, prog.args);
        const MachineStats &s = rig.machine->stats();
        LenHist dyn;
        for (unsigned l = 1; l < s.instLenCount.size(); ++l)
            dyn.add(l, s.instLenCount[l]);
        const double per_call =
            static_cast<double>(s.steps) /
            std::max<CountT>(1, s.calls() + s.returns());
        table.row(prog.name, "dynamic",
                  stats::percent(dyn.fraction(1)),
                  stats::percent(dyn.fraction(2)),
                  stats::percent(std::max(
                      0.0, 1 - dyn.fraction(1) - dyn.fraction(2))),
                  stats::fixed(dyn.meanBytes(), 2),
                  stats::fixed(per_call, 1));
    }
    table.print(std::cout);
    json.table("code_density", table);
}

void
BM_Disassemble(benchmark::State &state)
{
    Rig rig(primesProgram(), LinkPlan{}, MachineConfig{});
    for (auto _ : state)
        benchmark::DoNotOptimize(staticHistogram(rig, *rig.mem));
}
BENCHMARK(BM_Disassemble);

} // namespace

int
main(int argc, char **argv)
{
    JsonReport json(argc, argv, "c6_code_density");
    printDensity(json);
    json.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
