/**
 * @file
 * Experiment C7 — generality of the transfer model (§3, F1-F4).
 *
 * "A mechanism for control transfers should handle a variety of
 * applications (e.g., procedure calls and returns, coroutine
 * transfers, exceptions, process switches) in a uniform way."
 *
 * Every engine (I1-I4) runs every discipline through the same XFER
 * substrate: procedure calls, coroutine transfers, traps, process
 * switches, and retained frames — with no special storage discipline
 * (the frame heap never assumes LIFO). The table reports the cost of
 * each discipline per engine, showing the orderly fallback: unusual
 * transfers flush the return stack / banks and pay storage
 * references, while plain calls stay fast.
 */

#include <benchmark/benchmark.h>

#include "asm/builder.hh"
#include "bench_util.hh"
#include "common/strfmt.hh"

using namespace fpc;
using namespace fpc::bench;

namespace
{

/** Coroutine producer/consumer (§3's motivating generality). */
Module
coroModule()
{
    ModuleBuilder b("Coro");
    auto &prod = b.proc("producer", 2, 3);
    auto loop = prod.newLabel();
    prod.loadImm(1).storeLocal(2);
    prod.label(loop);
    prod.loadLocal(2).loadLocal(2).op(isa::Op::MUL);
    prod.loadLocal(1).op(isa::Op::XF);
    prod.loadLocal(2).loadImm(1).op(isa::Op::ADD).storeLocal(2);
    prod.loadLocal(2).loadLocal(0).op(isa::Op::LE).jumpNotZero(loop);
    prod.halt();

    auto &cons = b.proc("consumer", 0, 1);
    auto again = cons.newLabel();
    cons.label(again);
    cons.op(isa::Op::OUT).op(isa::Op::LRC).op(isa::Op::XF);
    cons.jump(again);

    // A one-instruction trap handler: out the trap code, halt.
    auto &handler = b.proc("handler", 0, 1);
    handler.op(isa::Op::OUT).halt();

    return b.build();
}

std::vector<Module>
processModules()
{
    return lang::compile(R"(
        module Procs;
        proc worker(id) {
            var i;
            i = 0;
            while (i < 3) {
                out id * 10 + i;
                yield;
                i = i + 1;
            }
            return 0;
        }
    )");
}

std::vector<Module>
trapModules()
{
    return lang::compile(R"(
        module Oops;
        proc main(n) { return 100 / n; }
    )");
}

double
meanRefs(const MachineStats &stats, XferKind kind)
{
    return stats.xferRefs[static_cast<unsigned>(kind)].mean();
}

void
printGenerality(JsonReport &json)
{
    std::cout << "Every discipline on every engine, through one XFER "
                 "substrate:\n\n";
    stats::Table table({"engine", "discipline", "transfers",
                        "mean refs", "result", "fallback effects"});

    for (const EngineCombo &combo : allEngines()) {
        // -- 1. plain calls --------------------------------------------
        {
            Rig rig(primesProgram(), planFor(combo), configFor(combo));
            const Word primes =
                runToResult(*rig.machine, "Primes", "main", {50});
            const MachineStats &s = rig.machine->stats();
            table.row(implName(combo.impl), "call/return",
                      s.calls() + s.returns(),
                      stats::fixed(meanRefs(s, XferKind::Return), 1),
                      primes == 15 ? "ok" : "WRONG",
                      strfmt("{} fast", stats::percent(
                                            s.fastCallReturnRate())));
        }

        // -- 2. coroutines ---------------------------------------------
        {
            Rig rig({coroModule()}, planFor(combo), configFor(combo));
            const Word consumer = rig.machine->spawn("Coro", "consumer");
            rig.machine->start("Coro", "producer", {{6, consumer}});
            rig.machine->run();
            const MachineStats &s = rig.machine->stats();
            const bool ok =
                rig.machine->output() ==
                std::vector<Word>{1, 4, 9, 16, 25, 36};
            table.row(
                implName(combo.impl), "coroutine XFER",
                s.xferCount[static_cast<unsigned>(XferKind::Coroutine)],
                stats::fixed(meanRefs(s, XferKind::Coroutine), 1),
                ok ? "ok" : "WRONG",
                strfmt("{} ret-stack flushes", s.returnStackFlushes));
        }

        // -- 3. process switches ---------------------------------------
        {
            Rig rig(processModules(), planFor(combo), configFor(combo));
            Machine &m = *rig.machine;
            std::vector<Word> queue = {
                m.spawn("Procs", "worker", {{2}}),
                m.spawn("Procs", "worker", {{3}}),
            };
            m.setScheduler([&queue](Machine &mm) {
                queue.push_back(mm.currentFrameContext());
                const Word next = queue.front();
                queue.erase(queue.begin());
                return next;
            });
            m.start("Procs", "worker", {{1}});
            m.run();
            const MachineStats &s = m.stats();
            // Interleaved: 10 20 30 11 21 31 12 22 32.
            const bool ok = m.output() == std::vector<Word>{10, 20, 30,
                                                            11, 21, 31,
                                                            12, 22, 32};
            table.row(implName(combo.impl), "process switch",
                      s.xferCount[static_cast<unsigned>(
                          XferKind::ProcSwitch)],
                      stats::fixed(meanRefs(s, XferKind::ProcSwitch), 1),
                      ok ? "ok" : "WRONG",
                      strfmt("{} bank flush words", s.bankFlushWords));
        }

        // -- 4. traps ----------------------------------------------------
        {
            auto modules = trapModules();
            modules.push_back(coroModule());
            Rig rig(modules, planFor(combo), configFor(combo));
            Machine &m = *rig.machine;
            m.setTrapContext(m.spawn("Coro", "handler"));
            m.start("Oops", "main", {{0}}); // divide by zero
            m.run();
            const MachineStats &s = m.stats();
            const bool ok = m.output().size() == 1 &&
                            m.output()[0] == 5; // trap code 5
            table.row(implName(combo.impl), "trap",
                      s.xferCount[static_cast<unsigned>(XferKind::Trap)],
                      stats::fixed(meanRefs(s, XferKind::Trap), 1),
                      ok ? "ok" : "WRONG", "handled, halted");
        }

        // -- 5. retained frames ------------------------------------------
        {
            MachineConfig config = configFor(combo);
            TraceRunner runner(config, FrameSizeDist::fixed(10), 1);
            Machine &m = runner.machine();
            runner.call(1);
            const Addr kept = m.currentFrame();
            m.setRetained(kept, true);
            m.inspectVar(kept, 0); // touch it
            runner.ret();
            const bool survived = m.heap().isRetained(kept);
            const auto &hs = m.heap().stats();
            table.row(implName(combo.impl), "retained frame", 1,
                      "-",
                      survived && hs.retainedSkips == 1 ? "ok"
                                                         : "WRONG",
                      "frame outlives its return");
        }
    }
    table.print(std::cout);
    json.table("generality", table);
    std::cout << "\nF2/F3 in action: frames are explicit objects; the "
                 "destination context chooses the discipline; unusual "
                 "transfers pay the fallback, plain calls do not.\n";
}

void
BM_CoroutinePingPong(benchmark::State &state)
{
    const auto combo = allEngines()[state.range(0)];
    Rig rig({coroModule()}, planFor(combo), configFor(combo));
    for (auto _ : state) {
        Rig fresh({coroModule()}, planFor(combo), configFor(combo));
        const Word consumer = fresh.machine->spawn("Coro", "consumer");
        fresh.machine->start("Coro", "producer", {{32, consumer}});
        fresh.machine->run();
    }
    state.SetLabel(implName(combo.impl));
}
BENCHMARK(BM_CoroutinePingPong)->DenseRange(0, 3);

} // namespace

int
main(int argc, char **argv)
{
    JsonReport json(argc, argv, "c7_generality");
    printGenerality(json);
    json.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
