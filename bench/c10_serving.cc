/**
 * @file
 * Experiment C10 — the serving runtime under load.
 *
 * The paper's machine ran one program for one user; fpcserve runs
 * many programs for many tenants, forever. This bench asks the two
 * questions that matter for that regime:
 *
 *  1. Closed loop — with a fixed set of clients each waiting for its
 *     reply before submitting again, what job throughput and latency
 *     does the pool sustain? This is the server's capacity.
 *  2. Open loop — when offered load is set *independently* of service
 *     rate (0.25x, 1x, 4x of the measured closed-loop capacity), how
 *     do latency percentiles degrade, and does admission control
 *     answer overload with explicit REJECTED/OVER_QUOTA backpressure
 *     instead of an unbounded queue? At 4x the bench *requires*
 *     nonzero rejects (exit 3 otherwise): a serving system that
 *     never says no has an invisible queue somewhere.
 *
 * The tenant mix is deliberately lopsided — gold (weight 3), silver
 * (weight 1), and tiny (weight 1, but max 2 queued jobs) — so the
 * open-loop table also shows DRR fairness and the per-tenant queue
 * bound doing their jobs.
 *
 * By default the bench spins an in-process Server on an ephemeral
 * port; --connect=HOST:PORT points it at an already-running fpcserve
 * instead (the CI smoke job does this). --scrape-out=FILE captures a
 * SCRAPE exposition mid-load for check_openmetrics.py.
 *
 * Flags: --connect=HOST:PORT --workers=N --clients=N --closed-jobs=N
 * --open-jobs=N --limit=N --scrape-out=FILE --json=FILE.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "serve/client.hh"
#include "serve/server.hh"

using namespace fpc;
using namespace fpc::bench;

namespace
{

using clock_t_ = std::chrono::steady_clock;

/** The workload every submit carries: MiniMesa source, compiled once
 *  server-side and cached, so both in-process and --connect modes
 *  exercise the identical path. */
const char *kPrimesSource = R"(
    module Primes;
    var count;
    proc isPrime(n) {
        var d;
        if (n < 2) { return 0; }
        d = 2;
        while (d * d <= n) {
            if (n % d == 0) { return 0; }
            d = d + 1;
        }
        return 1;
    }
    proc main(limit) {
        var i;
        i = 2;
        while (i < limit) {
            if (isPrime(i)) { count = count + 1; }
            i = i + 1;
        }
        return count;
    }
)";

const std::vector<std::string> kTenants = {"gold", "silver", "tiny"};

std::string gHost = "127.0.0.1";
std::uint16_t gPort = 0;
Word gLimit = 200;

double
msSince(clock_t_::time_point t0, clock_t_::time_point t1)
{
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

serve::Request
makeSubmit(std::uint32_t reqId, const std::string &tenant)
{
    serve::Request req;
    req.op = serve::ReqOp::Submit;
    req.submit.reqId = reqId;
    // Correlation id: lands in the server's span tree (fpc-spans-v1
    // traceId column) so a request here can be found there.
    req.submit.traceId = reqId;
    req.submit.tenant = tenant;
    req.submit.source = kPrimesSource;
    req.submit.args = {gLimit};
    return req;
}

[[noreturn]] void
die(const std::string &msg)
{
    std::cerr << "c10_serving: " << msg << "\n";
    std::exit(2);
}

/**
 * Closed loop: `clients` threads, each its own connection, each
 * submitting synchronously round-robin across the tenant mix until
 * `jobs` total jobs have completed. Returns sustained jobs/sec;
 * latencies land in `lat` (ms).
 */
double
closedLoop(unsigned clients, unsigned jobs, stats::Histogram &lat,
           std::uint64_t &failures, stats::Histogram *attrQueue,
           stats::Histogram *attrExec)
{
    std::atomic<unsigned> next{0};
    std::atomic<std::uint64_t> failed{0};
    std::mutex latMutex;
    const auto t0 = clock_t_::now();
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            serve::Client client;
            std::string err;
            if (!client.connect(gHost, gPort, err))
                die("connect: " + err);
            std::vector<double> samples;
            std::vector<std::pair<double, double>> attr;
            for (unsigned i = next.fetch_add(1); i < jobs;
                 i = next.fetch_add(1)) {
                const std::string &tenant =
                    kTenants[(c + i) % kTenants.size()];
                // A closed-loop client honors backpressure: on
                // REJECTED / OVER_QUOTA it waits the server's
                // retry-after hint and resubmits the same job.
                for (;;) {
                    serve::Reply reply;
                    const auto s0 = clock_t_::now();
                    if (!client.call(makeSubmit(i + 1, tenant), reply))
                        die("closed-loop call failed "
                            "(connection lost)");
                    if (reply.status == serve::Status::Rejected ||
                        reply.status == serve::Status::OverQuota) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(std::max(
                                1u, reply.retryAfterMs)));
                        continue;
                    }
                    samples.push_back(msSince(s0, clock_t_::now()));
                    if (reply.status == serve::Status::Ok &&
                        reply.execNs != 0)
                        attr.emplace_back(
                            static_cast<double>(reply.queueNs) / 1e6,
                            static_cast<double>(reply.execNs) / 1e6);
                    if (reply.status != serve::Status::Ok ||
                        !reply.jobOk)
                        failed.fetch_add(1);
                    break;
                }
            }
            std::lock_guard<std::mutex> lock(latMutex);
            for (double ms : samples)
                lat.sample(ms);
            if (attrQueue != nullptr)
                for (const auto &[q, e] : attr) {
                    attrQueue->sample(q);
                    attrExec->sample(e);
                }
        });
    }
    for (auto &t : threads)
        t.join();
    const double secs =
        std::chrono::duration<double>(clock_t_::now() - t0).count();
    failures = failed.load();
    return jobs / secs;
}

/** One open-loop level's outcome. */
struct OpenResult
{
    double offeredPerSec = 0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;   ///< ran but stopped abnormally
    std::uint64_t rejected = 0; ///< queue-full backpressure
    std::uint64_t overQuota = 0;
    std::uint64_t other = 0; ///< draining / bad-request
    stats::Histogram latency{0.5, 400};
    /** Server-side attribution echoed in the Ok replies. */
    stats::Histogram attrQueue{0.5, 400};
    stats::Histogram attrExec{0.5, 400};
};

/**
 * Open loop: one pipelined connection per tenant, a paced sender
 * pushing SUBMITs at the offered rate regardless of completions, and
 * a reader collecting the (possibly out-of-order) replies. Every
 * submit gets exactly one reply, so the reader joins on a count.
 */
OpenResult
openLoop(double offeredPerSec, unsigned jobs)
{
    OpenResult out;
    out.offeredPerSec = offeredPerSec;
    std::mutex mergeMutex;

    const unsigned perTenant =
        std::max(1u, jobs / static_cast<unsigned>(kTenants.size()));
    const double perTenantRate =
        offeredPerSec / static_cast<double>(kTenants.size());

    std::vector<std::thread> threads;
    for (const std::string &tenant : kTenants) {
        threads.emplace_back([&, tenant] {
            serve::Client client;
            std::string err;
            if (!client.connect(gHost, gPort, err))
                die("connect: " + err);

            // Send times indexed by reqId - 1; written strictly
            // before the send() syscall for that id.
            std::vector<std::atomic<std::int64_t>> sentNs(perTenant);
            const auto start = clock_t_::now();

            std::thread reader([&] {
                stats::Histogram lat(0.5, 400);
                stats::Histogram attrQ(0.5, 400), attrE(0.5, 400);
                std::uint64_t ok = 0, failed = 0, rejected = 0,
                              overQuota = 0, other = 0;
                for (unsigned got = 0; got < perTenant; ++got) {
                    serve::Reply reply;
                    if (!client.recv(reply))
                        die("open-loop recv failed (connection lost)");
                    const auto now = clock_t_::now();
                    switch (reply.status) {
                      case serve::Status::Ok: {
                        reply.jobOk ? ++ok : ++failed;
                        const std::int64_t s =
                            sentNs[reply.reqId - 1].load();
                        lat.sample(
                            static_cast<double>(
                                std::chrono::duration_cast<
                                    std::chrono::nanoseconds>(
                                    now - start)
                                    .count() -
                                s) /
                            1e6);
                        if (reply.execNs != 0) {
                            attrQ.sample(
                                static_cast<double>(reply.queueNs) /
                                1e6);
                            attrE.sample(
                                static_cast<double>(reply.execNs) /
                                1e6);
                        }
                        break;
                      }
                      case serve::Status::Rejected:
                        ++rejected;
                        break;
                      case serve::Status::OverQuota:
                        ++overQuota;
                        break;
                      default:
                        ++other;
                        break;
                    }
                }
                std::lock_guard<std::mutex> lock(mergeMutex);
                out.ok += ok;
                out.failed += failed;
                out.rejected += rejected;
                out.overQuota += overQuota;
                out.other += other;
                out.latency.merge(lat);
                out.attrQueue.merge(attrQ);
                out.attrExec.merge(attrE);
            });

            const double intervalNs = 1e9 / perTenantRate;
            for (unsigned i = 0; i < perTenant; ++i) {
                const auto due =
                    start + std::chrono::nanoseconds(
                                static_cast<std::int64_t>(
                                    intervalNs * i));
                std::this_thread::sleep_until(due);
                sentNs[i].store(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(clock_t_::now() -
                                                  start)
                        .count());
                if (!client.send(makeSubmit(i + 1, tenant)))
                    die("open-loop send failed (connection lost)");
            }
            reader.join();
        });
    }
    for (auto &t : threads)
        t.join();
    return out;
}

/** Microbenchmark: closed-loop round trips on one connection (the
 *  per-job serving overhead: frame, admit, dispatch, run, reply). */
void
BM_ServeRoundTrip(benchmark::State &state)
{
    serve::Client client;
    std::string err;
    if (!client.connect(gHost, gPort, err))
        die("connect: " + err);
    std::uint32_t id = 1;
    for (auto _ : state) {
        serve::Reply reply;
        if (!client.call(makeSubmit(id++, "gold"), reply) ||
            reply.status != serve::Status::Ok)
            die("benchmark round trip failed");
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeRoundTrip)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
try {
    JsonReport json(argc, argv, "c10_serving");
    std::string connect;
    std::string scrapeOut;
    unsigned workers = 2;
    unsigned clients = 3;
    unsigned closedJobs = 60;
    unsigned openJobs = 90;
    {
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--connect=", 0) == 0)
                connect = arg.substr(10);
            else if (arg.rfind("--scrape-out=", 0) == 0)
                scrapeOut = arg.substr(13);
            else
                argv[out++] = argv[i];
        }
        argc = out;
    }
    workers = stripUintFlag(argc, argv, "workers", workers);
    clients = stripUintFlag(argc, argv, "clients", clients);
    closedJobs = stripUintFlag(argc, argv, "closed-jobs", closedJobs);
    openJobs = stripUintFlag(argc, argv, "open-jobs", openJobs);
    gLimit = static_cast<Word>(
        stripUintFlag(argc, argv, "limit", gLimit));

    // The server under test: remote (--connect) or in-process. The
    // tenant mix must match what the table below assumes; the CI
    // smoke job starts fpcserve with the same --tenant flags.
    std::unique_ptr<serve::Server> local;
    if (connect.empty()) {
        serve::ServerConfig sc;
        sc.workers = workers;
        const EngineCombo combo{Impl::Banked, CallLowering::Direct,
                                true};
        sc.machine = configFor(combo);
        sc.plan = planFor(combo);
        sc.queueCapacity = 8;
        sc.tenants["gold"] = {3.0, 64, 0};
        sc.tenants["silver"] = {1.0, 64, 0};
        sc.tenants["tiny"] = {1.0, 2, 0};
        local = std::make_unique<serve::Server>(sc);
        local->start();
        gPort = local->port();
    } else {
        const auto colon = connect.rfind(':');
        if (colon == std::string::npos)
            die("--connect wants HOST:PORT");
        gHost = connect.substr(0, colon);
        gPort = static_cast<std::uint16_t>(
            std::stoul(connect.substr(colon + 1)));
    }

    std::cout << "C10 — serving under load (" << gHost << ":" << gPort
              << (local ? ", in-process" : ", remote") << ", primes("
              << gLimit << ") via source submit, tenants gold:3 / "
              << "silver:1 / tiny:1 cap 2)\n\n";

    // Closed loop first: its throughput calibrates the open loop.
    stats::Histogram closedLat(0.5, 400);
    stats::Histogram closedAttrQ(0.5, 400), closedAttrE(0.5, 400);
    std::uint64_t closedFailures = 0;
    closedLoop(clients, std::max(1u, closedJobs / 8), closedLat,
               closedFailures, nullptr,
               nullptr); // warm-up: connections, source cache
    closedLat.reset();
    const double closedJps =
        closedLoop(clients, closedJobs, closedLat, closedFailures,
                   &closedAttrQ, &closedAttrE);
    if (closedFailures)
        die("closed-loop jobs failed");

    stats::Table closedTable({"clients", "jobs", "jobs/s", "p50 ms",
                              "p90 ms", "p99 ms", "queue p50",
                              "exec p50"});
    closedTable.row(clients, closedJobs, stats::fixed(closedJps, 1),
                    stats::fixed(closedLat.p50(), 2),
                    stats::fixed(closedLat.p90(), 2),
                    stats::fixed(closedLat.p99(), 2),
                    stats::fixed(closedAttrQ.p50(), 2),
                    stats::fixed(closedAttrE.p50(), 2));
    std::cout << "Closed loop (each client waits for its reply; "
                 "queue/exec are the server's own attribution):\n\n";
    closedTable.print(std::cout);
    json.table("closed_loop", closedTable);
    json.metric("closed_jobs_per_s", closedJps);
    json.metric("ms_closed_p50", closedLat.p50());
    json.metric("ms_closed_p90", closedLat.p90());
    json.metric("ms_closed_p99", closedLat.p99());
    // attr_* metrics are informational in bench_diff: host-time
    // attribution, not a simulated invariant.
    json.metric("attr_closed_queue_ms_p50", closedAttrQ.p50());
    json.metric("attr_closed_exec_ms_p50", closedAttrE.p50());

    // Open loop: offered load decoupled from service rate.
    struct Level
    {
        const char *label;
        const char *key;
        double factor;
    };
    const std::vector<Level> levels = {
        {"0.25x", "x025", 0.25}, {"1x", "x1", 1.0}, {"4x", "x4", 4.0}};

    std::cout << "\nOpen loop (offered load as a multiple of "
                 "closed-loop capacity, "
              << openJobs << " jobs per level):\n\n";
    stats::Table openTable({"offered", "jobs/s", "ok", "rejected",
                            "over-quota", "other", "p50 ms", "p90 ms",
                            "p99 ms", "queue p99", "exec p99"});
    std::uint64_t topRejects = 0;
    for (const Level &level : levels) {
        // Capture a SCRAPE in the middle of the saturating level,
        // concurrent with the pipelined SUBMITs and out-of-order
        // replies: the exposition must be coherent under load, not
        // just at rest.
        std::thread scraper;
        if (level.factor >= 4.0 && !scrapeOut.empty()) {
            const double expectSecs =
                openJobs / (closedJps * level.factor);
            scraper = std::thread([&, expectSecs] {
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(expectSecs * 0.5));
                serve::Client client;
                std::string err, text;
                if (!client.connect(gHost, gPort, err) ||
                    !client.scrape(text))
                    die("scrape failed: " + err);
                std::ofstream os(scrapeOut);
                if (!os)
                    die("cannot write " + scrapeOut);
                os << text;
            });
        }
        const OpenResult r =
            openLoop(closedJps * level.factor, openJobs);
        if (scraper.joinable())
            scraper.join();
        openTable.row(level.label, stats::fixed(r.offeredPerSec, 1),
                      r.ok, r.rejected, r.overQuota,
                      r.failed + r.other,
                      stats::fixed(r.latency.p50(), 2),
                      stats::fixed(r.latency.p90(), 2),
                      stats::fixed(r.latency.p99(), 2),
                      stats::fixed(r.attrQueue.p99(), 2),
                      stats::fixed(r.attrExec.p99(), 2));
        json.metric(std::string("open_ok_") + level.key,
                    static_cast<double>(r.ok));
        json.metric(std::string("ms_open_p99_") + level.key,
                    r.latency.p99());
        json.metric(std::string("attr_open_queue_ms_p99_") +
                        level.key,
                    r.attrQueue.p99());
        json.metric(std::string("attr_open_exec_ms_p99_") + level.key,
                    r.attrExec.p99());
        if (level.factor >= 4.0)
            topRejects = r.rejected + r.overQuota;
        if (r.failed)
            die("open-loop jobs ran but failed");
    }
    openTable.print(std::cout);
    json.table("open_loop", openTable);
    json.metric("open_rejected_x4", static_cast<double>(topRejects));

    std::cout << "\nAt 4x offered load the bounded queues must push "
                 "back: "
              << topRejects << " rejected/over-quota.\n";
    if (topRejects == 0) {
        std::cerr << "c10_serving: REGRESSION — no backpressure at "
                     "4x offered load; admission control is not "
                     "bounding the queue.\n";
        return 3;
    }
    json.write();
    std::cout << "\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
} catch (const std::exception &err) {
    std::cerr << "c10_serving: bad flag value (" << err.what()
              << "); expected --connect=HOST:PORT --workers=N "
                 "--clients=N --closed-jobs=N --open-jobs=N "
                 "--limit=N --scrape-out=FILE --json=FILE\n";
    return 2;
}
