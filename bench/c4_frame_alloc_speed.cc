/**
 * @file
 * Experiment C4 — fast frame allocation (§7.1).
 *
 * Paper: "Mesa statistics suggest that 95% of all frames allocated
 * are smaller than 80 bytes ... hopefully this [standard size] would
 * handle 95% of all frame allocations ... If the general scheme is
 * five times more costly and it is used 5% of the time, the
 * effective speed of frame allocation is .8 times the fast speed."
 *
 * Measured here: the fraction of allocations served by the
 * processor's free-frame stack, the mean storage references per
 * allocation, and the effective-speed ratio, as the free-frame stack
 * depth and the frame-size distribution vary.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

using namespace fpc;
using namespace fpc::bench;

namespace
{

void
measure(const char *name, const FrameSizeDist &dist, unsigned depth,
        stats::Table &table)
{
    MachineConfig config;
    config.impl = Impl::Banked;
    config.fastFrameStackDepth = depth;
    TraceRunner runner(config, dist, 1);

    TraceConfig tc;
    tc.length = 200'000;
    tc.seed = 23;
    runner.run(generateTrace(tc));

    const MachineStats &s = runner.machine().stats();
    const auto &hs = runner.machine().heap().stats();
    const CountT total = s.fastFrameAllocs + s.slowFrameAllocs;
    const double fast_rate =
        static_cast<double>(s.fastFrameAllocs) / total;
    const double mean_refs =
        static_cast<double>(hs.refsAlloc) / total;

    // Effective speed vs the pure fast path, in the paper's terms: a
    // fast alloc costs ~1 unit (overlapped with the XFER), the
    // general scheme ~5 (three storage references plus the trap's
    // amortized share). Paper: 95% fast => 0.8x.
    const double slow_cost = 5.0;
    const double effective =
        1.0 / (fast_rate + (1.0 - fast_rate) * slow_cost);

    table.row(name, depth, stats::percent(fast_rate),
              stats::fixed(mean_refs, 3), stats::fixed(effective, 2),
              hs.softwareTraps);
}

void
printAllocSpeed(JsonReport &json)
{
    std::cout
        << "Frame allocation through the processor's free-frame stack "
           "(paper: ~95% fast, effective speed ~0.8x fast):\n\n";
    stats::Table table({"frame sizes", "stack depth", "fast allocs",
                        "storage refs/alloc", "effective speed (x)",
                        "heap traps"});
    for (const unsigned depth : {4u, 8u, 16u, 32u}) {
        measure("mesa (95% < 80B)", FrameSizeDist::mesa(), depth,
                table);
    }
    // All-large frames defeat the standard size entirely.
    measure("all 120-word frames", FrameSizeDist::fixed(120), 16,
            table);
    // All-small frames are served almost perfectly.
    measure("all 12-word frames", FrameSizeDist::fixed(12), 16, table);
    table.print(std::cout);
    json.table("alloc_speed", table);
    std::cout
        << "\nThe mesa rows should show roughly the paper's 95% "
           "fast-path fraction (the distribution puts 95% of frames "
           "under the 40-word standard size); misses come from "
           "free-stack underflow during deep descents and from the "
           "large-frame tail.\n";
}

void
BM_AllocViaStack(benchmark::State &state)
{
    MachineConfig config;
    config.impl = Impl::Banked;
    TraceRunner runner(config, FrameSizeDist::mesa(), 1);
    for (auto _ : state) {
        runner.call(0);
        runner.ret();
    }
}
BENCHMARK(BM_AllocViaStack);

} // namespace

int
main(int argc, char **argv)
{
    JsonReport json(argc, argv, "c4_frame_alloc_speed");
    printAllocSpeed(json);
    json.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
