/**
 * @file
 * Experiment F3 — Figure 3 and §7.1: register banks.
 *
 * Part A replays the figure's call/return sequence on the I4 machine
 * with four banks and prints the bank assignment after every
 * transfer, reproducing the figure's table: the stack bank is renamed
 * to the callee's frame bank on each call, a fresh bank becomes the
 * stack, and banks are visibly *not* used in LIFO order.
 *
 * Part B sweeps the bank count against traces of varying LIFO-ness
 * and reports the overflow+underflow rate per XFER. Paper: "with 4
 * banks it happens on less than 5% of XFERs; and [4] reports that
 * with 4-8 banks the rate is less than 1%."
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "common/strfmt.hh"

using namespace fpc;
using namespace fpc::bench;

namespace
{

/** Part A: the figure's sequence, bank state after each step. */
void
replayFigure3(JsonReport &json)
{
    MachineConfig config;
    config.impl = Impl::Banked;
    config.numBanks = 4;
    TraceRunner runner(config, FrameSizeDist::fixed(12), 1);
    Machine &m = runner.machine();

    std::map<Addr, std::string> names;
    names[m.currentFrame()] = "FX";
    char next = 'A';

    std::vector<std::string> headers = {"event"};
    for (unsigned b = 0; b < m.banks().numBanks(); ++b)
        headers.push_back(strfmt("bank{}", b + 1));
    headers.push_back("return stack");
    stats::Table table(headers);

    auto snapshot = [&](const std::string &event) {
        std::vector<std::string> row = {event};
        for (unsigned b = 0; b < m.banks().numBanks(); ++b) {
            std::string cell;
            if (m.banks().isFree(b)) {
                cell = "-";
            } else if (static_cast<int>(b) == m.currentStackBank()) {
                cell = "S";
            } else {
                const Addr owner = m.banks().owner(b);
                auto it = names.find(owner);
                cell = it != names.end() ? "L=" + it->second : "?";
                if (static_cast<int>(b) == m.currentLbank())
                    cell += " *";
            }
            row.push_back(cell);
        }
        std::string rs;
        for (const Addr lf : m.returnStackFrames())
            rs += (rs.empty() ? "" : " ") + names[lf];
        row.push_back(rs.empty() ? "-" : rs);
        table.addRow(row);
    };

    auto call = [&](const std::string &who) {
        runner.call(0);
        names[m.currentFrame()] = "F" + who;
        snapshot("call " + who);
    };
    auto ret = [&]() {
        const std::string who = names[m.currentFrame()];
        runner.ret();
        snapshot("return (" + who + " dies)");
    };

    snapshot("begin in X");
    call("A");
    ret();
    call("B");
    call("C");
    ret();
    call("D");
    ret();
    ret();

    std::cout << "Figure 3 — bank assignment through the call/return "
                 "sequence (S = the evaluation-stack bank, L=Fx = "
                 "shadowing frame x, * = current frame's bank):\n\n";
    table.print(std::cout);
    json.table("figure3_replay", table);
    std::cout << "\nNote how a call renames S into the callee's L "
                 "bank (free argument passing, §7.2) and how the "
                 "banks are not used in last-in first-out order.\n";
}

/** Part B: bank-count sweep vs trace LIFO-ness. */
void
sweepBanks(JsonReport &json)
{
    std::cout << "\nBank overflow+underflow rate per XFER "
                 "(paper: <5% at 4 banks; [4]: <1% at 4-8):\n\n";

    stats::Table table({"banks", "mesa-like", "drifting",
                        "hostile runs"});
    for (const unsigned banks : {2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
        std::vector<std::string> row = {std::to_string(banks)};
        struct Shape
        {
            double persistence;
            double pull;
        };
        for (const Shape shape :
             {Shape{0.25, 0.2}, Shape{0.5, 0.02}, Shape{0.8, 0.0}}) {
            MachineConfig config;
            config.impl = Impl::Banked;
            config.numBanks = banks;
            TraceRunner runner(config, FrameSizeDist::fixed(12), 1);

            TraceConfig tc;
            tc.length = 200'000;
            tc.persistence = shape.persistence;
            tc.depthPull = shape.pull;
            tc.seed = 17;
            runner.run(generateTrace(tc));

            row.push_back(
                stats::percent(runner.machine().stats().bankEventRate()));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    json.table("bank_sweep", table);
}

void
BM_TraceBanked(benchmark::State &state)
{
    MachineConfig config;
    config.impl = Impl::Banked;
    config.numBanks = state.range(0);
    TraceRunner runner(config);
    TraceConfig tc;
    tc.length = 10'000;
    const auto trace = generateTrace(tc);
    for (auto _ : state) {
        runner.run(trace);
        // Unwind to the chain base so frames cannot accumulate
        // across iterations.
        while (runner.depth() > 0)
            runner.ret();
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_TraceBanked)->Arg(2)->Arg(4)->Arg(8);

} // namespace

int
main(int argc, char **argv)
{
    JsonReport json(argc, argv, "fig3_register_banks");
    replayFigure3(json);
    sweepBanks(json);
    json.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
