/**
 * @file
 * Experiment C2 — the space arithmetic of table indirection (§5, T1)
 * and whole-image size under the three encodings.
 *
 * T1: "If the full address takes f bits, the table index takes i
 * bits, and the address is used n times, then the space changes from
 * nf to ni+f. For example, if n=3, i=10 (1024 table entries) and
 * f=32, then 96-62 = 34 bits are saved, or about one-third."
 *
 * The empirical half loads the same synthetic program with §4's
 * inline descriptors (fat), §5's Mesa linkage, and §6's direct calls,
 * and compares call-site bytes, link-vector words and total image
 * size. Paper shape: §5 minimizes space, §4 maximizes it, §6 sits
 * between (trading space back for speed).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

using namespace fpc;
using namespace fpc::bench;

namespace
{

void
printT1Arithmetic(JsonReport &json)
{
    std::cout << "T1 — bits to reference one external procedure, "
                 "inline address (nf) vs table index (ni+f):\n\n";
    stats::Table table({"uses n", "index bits i", "address bits f",
                        "inline nf", "table ni+f", "saved",
                        "saving"});
    struct Case
    {
        unsigned n, i, f;
    };
    for (const Case c : {Case{1, 10, 32}, Case{2, 10, 32},
                         Case{3, 10, 32}, // the paper's example
                         Case{5, 10, 32}, Case{10, 10, 32},
                         Case{3, 8, 24}, Case{3, 8, 40}}) {
        const int inline_bits = c.n * c.f;
        const int table_bits = c.n * c.i + c.f;
        const int saved = inline_bits - table_bits;
        table.row(c.n, c.i, c.f, inline_bits, table_bits, saved,
                  stats::percent(
                      static_cast<double>(saved) / inline_bits));
    }
    table.print(std::cout);
    json.table("t1_arithmetic", table);
    std::cout << "\n(The paper's example is the n=3 row: 96 - 62 = 34 "
                 "bits saved, about one-third.)\n";
}

void
printImageSizes(JsonReport &json)
{
    ProgramConfig pc;
    pc.modules = 8;
    pc.procsPerModule = 12;
    pc.callSitesPerProc = 4;
    pc.localCallFraction = 0.4;
    pc.seed = 77;
    const auto modules = generateProgram(pc);

    std::cout << "\nWhole-image space for the same program under each "
                 "encoding (§8: \"§4 maximizes simplicity ... §5 "
                 "minimizes space\"):\n\n";
    stats::Table table({"encoding", "call sites", "call-site bytes",
                        "bytes/site", "LV words", "code bytes",
                        "code+LV bytes"});

    struct PlanRow
    {
        const char *name;
        CallLowering lowering;
        bool shortCalls;
    };
    for (const PlanRow &row :
         {PlanRow{"fat (§4 inline descriptors)", CallLowering::Fat,
                  false},
          PlanRow{"mesa (§5 LV/GFT/EV)", CallLowering::Mesa, false},
          PlanRow{"direct (§6 DIRECTCALL)", CallLowering::Direct,
                  false},
          PlanRow{"short direct (§6 SDFC)", CallLowering::Direct,
                  true}}) {
        const SystemLayout layout;
        Memory mem(layout.memWords);
        Loader loader{layout, SizeClasses::standard()};
        for (const auto &m : modules)
            loader.add(m);
        LinkPlan plan;
        plan.lowering = row.lowering;
        plan.shortCalls = row.shortCalls;
        const LoadedImage image = loader.load(mem, plan);

        CountT sites = 0;
        CountT site_bytes = 0;
        for (const auto &pm : image.modules()) {
            sites += pm.callSites;
            site_bytes += pm.callSiteBytes;
        }
        table.row(row.name, sites, site_bytes,
                  stats::fixed(static_cast<double>(site_bytes) / sites,
                               2),
                  image.lvWords(), image.codeBytes(),
                  image.codeBytes() + 2 * image.lvWords());
    }
    table.print(std::cout);
    json.table("image_sizes", table);
}

void
BM_LoadImage(benchmark::State &state)
{
    ProgramConfig pc;
    pc.modules = 8;
    pc.procsPerModule = 12;
    const auto modules = generateProgram(pc);
    const SystemLayout layout;
    Memory mem(layout.memWords);
    LinkPlan plan;
    plan.lowering = static_cast<CallLowering>(state.range(0));
    for (auto _ : state) {
        Loader loader{layout, SizeClasses::standard()};
        for (const auto &m : modules)
            loader.add(m);
        benchmark::DoNotOptimize(loader.load(mem, plan));
    }
}
BENCHMARK(BM_LoadImage)
    ->Arg(static_cast<int>(CallLowering::Fat))
    ->Arg(static_cast<int>(CallLowering::Mesa))
    ->Arg(static_cast<int>(CallLowering::Direct));

} // namespace

int
main(int argc, char **argv)
{
    JsonReport json(argc, argv, "c2_space_encoding");
    printT1Arithmetic(json);
    printImageSizes(json);
    json.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
