/**
 * @file
 * Experiment C8 — the runtime as a throughput engine.
 *
 * Two questions the paper never had to ask of one Dorado, but a
 * growing system must:
 *
 *  1. Does job throughput scale with worker threads? Each worker owns
 *     an independent Machine (nothing shared but the job queue), so
 *     jobs/sec should rise with --workers until host cores run out.
 *  2. Does the §1/§6 headline — calls+returns at jump cost >= 95% of
 *     the time — survive preemptive timeslicing? Every expired slice
 *     is a genuine ProcSwitch XFER: the I3 return stack flushes, the
 *     I4 banks write back (§7.1), and the transfers just after a
 *     resume pay underflows. The claim must hold anyway, because
 *     slices are long compared to the damage each switch does.
 *
 * Flags: --workers=a,b,c --jobs=M --timeslice=N (defaults 1,2,4,8 /
 * 32 / 10000 — a millisecond-scale slice at the paper's machine
 * speeds; see EXPERIMENTS.md C8 for the slice-length sweep).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>

#include "bench_util.hh"
#include "sched/runtime.hh"

using namespace fpc;
using namespace fpc::bench;

namespace
{

std::shared_ptr<const std::vector<Module>>
sharedProgram(std::vector<Module> modules)
{
    return std::make_shared<const std::vector<Module>>(
        std::move(modules));
}

sched::RuntimeConfig
runtimeConfig(const EngineCombo &combo, unsigned workers,
              unsigned banks, std::uint64_t timeslice)
{
    sched::RuntimeConfig rc;
    rc.workers = workers;
    rc.machine = configFor(combo);
    if (banks)
        rc.machine.numBanks = banks;
    rc.machine.timesliceSteps = timeslice;
    rc.plan = planFor(combo);
    return rc;
}

double
runBatch(const sched::RuntimeConfig &rc,
         const std::shared_ptr<const std::vector<Module>> &prog,
         const std::string &module, const std::string &proc,
         const std::vector<Word> &args, unsigned jobs,
         MachineStats *merged = nullptr)
{
    sched::Runtime runtime(rc);
    for (unsigned j = 0; j < jobs; ++j)
        runtime.submit({prog, module, proc, args});
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = runtime.run();
    const auto t1 = std::chrono::steady_clock::now();
    for (const auto &r : results) {
        if (!r.ok) {
            std::cerr << "c8 job failed: " << r.error << "\n";
            std::abort();
        }
    }
    if (merged)
        merged->merge(runtime.machineStats());
    return std::chrono::duration<double>(t1 - t0).count();
}

void
printThroughput(const std::vector<unsigned> &worker_counts,
                unsigned jobs, std::uint64_t timeslice,
                JsonReport &json)
{
    std::cout << "Jobs/sec vs worker threads (" << jobs
              << " jobs of primes(1200), I4/direct, timeslice "
              << timeslice << "):\n\n";

    const EngineCombo combo{Impl::Banked, CallLowering::Direct, true};
    const auto prog = sharedProgram(primesProgram());
    const std::vector<Word> args = {1200};

    stats::Table table({"workers", "wall s", "jobs/s", "speedup",
                        "Minstr/s", "preemptions"});
    double base = 0;
    for (const unsigned w : worker_counts) {
        const auto rc = runtimeConfig(combo, w, 0, timeslice);
        // Warm once (first-touch allocation, thread start-up), then
        // measure.
        runBatch(rc, prog, "Primes", "main", args,
                 std::max(1u, jobs / 8));
        MachineStats merged;
        const double secs = runBatch(runtimeConfig(combo, w, 0,
                                                   timeslice),
                                     prog, "Primes", "main", args,
                                     jobs, &merged);
        const double jps = jobs / secs;
        if (base == 0)
            base = jps;
        table.row(w, stats::fixed(secs, 3), stats::fixed(jps, 1),
                  stats::fixed(jps / base, 2),
                  stats::fixed(merged.steps / secs / 1e6, 1),
                  merged.preemptions);
    }
    table.print(std::cout);
    json.table("throughput", table);
    std::cout << "\nWorkers share nothing but the job queue, so "
                 "speedup tracks host cores (this is wall-clock "
                 "scaling, not simulated cycles).\n";
}

void
printFastUnderPreemption(std::uint64_t timeslice, JsonReport &json)
{
    std::cout << "\nCall-at-jump-cost rate with and without "
                 "preemptive timeslicing (4 workers x 8 jobs, merged "
                 "stats):\n\n";

    struct Row
    {
        const char *label;
        EngineCombo combo;
        unsigned banks;
    };
    const std::vector<Row> rows = {
        {"I3-ifu", {Impl::Ifu, CallLowering::Direct, true}, 0},
        {"I4-banked/4", {Impl::Banked, CallLowering::Direct, true}, 4},
        {"I4-banked/8", {Impl::Banked, CallLowering::Direct, true}, 8},
    };

    struct Load
    {
        const char *name;
        std::vector<Module> modules;
        std::string module, proc;
        std::vector<Word> args;
    };
    std::vector<Load> loads;
    loads.push_back({"primes (loop+helper)", primesProgram(), "Primes",
                     "main", {400}});
    loads.push_back({"fib (deep recursion)", fibProgram(), "Fib",
                     "main", {18}});

    stats::Table table({"workload", "engine", "fast, no slicing",
                        "fast, sliced", "preemptions",
                        "procSwitch refs"});
    // The claim to defend: every engine/workload pair that reaches
    // 95% *without* slicing must still reach it *with* slicing.
    // (I4/4-banks on deep recursion misses 95% even unpreempted —
    // that is the paper's own "recursion wants ~8 banks" shape, not
    // a timeslicing regression.)
    double worstSurvivor = 1.0;
    for (const Load &l : loads) {
        const auto prog = sharedProgram(l.modules);
        for (const Row &row : rows) {
            MachineStats plain, sliced;
            runBatch(runtimeConfig(row.combo, 4, row.banks, 0), prog,
                     l.module, l.proc, l.args, 8, &plain);
            runBatch(runtimeConfig(row.combo, 4, row.banks, timeslice),
                     prog, l.module, l.proc, l.args, 8, &sliced);
            table.row(
                l.name, row.label,
                stats::percent(plain.fastCallReturnRate()),
                stats::percent(sliced.fastCallReturnRate()),
                sliced.preemptions,
                stats::fixed(
                    sliced
                        .xferRefs[static_cast<unsigned>(
                            XferKind::ProcSwitch)]
                        .mean(),
                    1));
            if (plain.fastCallReturnRate() >= 0.95)
                worstSurvivor = std::min(
                    worstSurvivor, sliced.fastCallReturnRate());
        }
    }
    table.print(std::cout);
    json.table("fast_under_preemption", table);
    json.metric("worst_sliced_fast_rate", worstSurvivor);
    std::cout << "\nHeadline check: worst sliced rate among rows "
                 "that were >=95% unsliced: "
              << stats::percent(worstSurvivor)
              << (worstSurvivor >= 0.95
                      ? " — the claim survives timeslicing.\n"
                      : " — REGRESSION: preemption broke the 95% "
                        "claim.\n");
}

unsigned gJobs = 32;
std::uint64_t gTimeslice = 10000;

void
BM_BatchThroughput(benchmark::State &state)
{
    const EngineCombo combo{Impl::Banked, CallLowering::Direct, true};
    const auto prog = sharedProgram(primesProgram());
    const auto workers = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        const double secs =
            runBatch(runtimeConfig(combo, workers, 0, gTimeslice),
                     prog, "Primes", "main", {600}, 16);
        state.SetIterationTime(secs);
    }
    state.SetLabel(std::to_string(workers) + " workers");
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_BatchThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
try {
    JsonReport json(argc, argv, "c8_throughput");
    std::vector<unsigned> workers = {1, 2, 4, 8};
    // Strip our flags before google-benchmark sees argv.
    int argc_out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--workers=", 0) == 0) {
            workers.clear();
            std::string list = arg.substr(10);
            std::size_t pos = 0;
            while (pos < list.size()) {
                const auto comma = list.find(',', pos);
                const auto end =
                    comma == std::string::npos ? list.size() : comma;
                workers.push_back(
                    std::stoul(list.substr(pos, end - pos)));
                pos = end + 1;
            }
        } else if (arg.rfind("--jobs=", 0) == 0) {
            gJobs = std::stoul(arg.substr(7));
        } else if (arg.rfind("--timeslice=", 0) == 0) {
            gTimeslice = std::stoull(arg.substr(12));
        } else {
            argv[argc_out++] = argv[i];
        }
    }
    argc = argc_out;

    printThroughput(workers, gJobs, gTimeslice, json);
    printFastUnderPreemption(gTimeslice, json);
    json.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
} catch (const std::exception &err) {
    std::cerr << "c8_throughput: bad flag value (" << err.what()
              << "); expected --workers=a,b,c --jobs=M "
                 "--timeslice=N\n";
    return 2;
}
