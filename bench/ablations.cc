/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out — the
 * knobs the paper mentions but does not sweep:
 *
 *  A1. Dirty-only bank flushing (§7.1: "It may be worthwhile to keep
 *      track of which registers have been written, to avoid the cost
 *      of dumping registers which have never been written.")
 *  A2. IFU return-stack depth (§6: "a small stack").
 *  A3. Link-vector slot ordering by static frequency (§5.1: the
 *      one-byte EFC0..7 opcodes serve "the (statically) most
 *      frequently called procedures").
 *  A4. Standard fast-frame size (§7.1's 80-byte choice).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "isa/disasm.hh"

using namespace fpc;
using namespace fpc::bench;

namespace
{

void
ablateDirtyFlush(JsonReport &json)
{
    std::cout << "A1 — bank flushing: dirty words only vs whole "
                 "bank:\n\n";
    stats::Table table({"policy", "flush words", "overflows",
                        "cycles"});
    for (const bool dirty_only : {true, false}) {
        MachineConfig config;
        config.impl = Impl::Banked;
        config.numBanks = 4;
        config.flushDirtyOnly = dirty_only;
        LinkPlan plan;
        plan.lowering = CallLowering::Direct;
        Rig rig(fibProgram(), plan, config);
        runSteadyState(rig, "Fib", "main", {16});
        const MachineStats &s = rig.machine->stats();
        table.row(dirty_only ? "dirty-only (§7.1 suggestion)"
                             : "whole bank",
                  s.bankFlushWords, s.bankOverflows, s.cycles);
    }
    table.print(std::cout);
    json.table("a1_dirty_flush", table);
}

void
ablateReturnStackDepth(JsonReport &json)
{
    std::cout << "\nA2 — IFU return-stack depth (deep recursion, "
                 "fib(16)):\n\n";
    stats::Table table({"depth", "hits", "misses", "spills",
                        "fast call+ret", "cycles"});
    for (const unsigned depth : {2u, 4u, 8u, 16u, 32u}) {
        MachineConfig config;
        config.impl = Impl::Banked;
        config.numBanks = 8;
        config.returnStackDepth = depth;
        LinkPlan plan;
        plan.lowering = CallLowering::Direct;
        Rig rig(fibProgram(), plan, config);
        runSteadyState(rig, "Fib", "main", {16});
        const MachineStats &s = rig.machine->stats();
        table.row(depth, s.returnStackHits, s.returnStackMisses,
                  s.returnStackSpills,
                  stats::percent(s.fastCallReturnRate()), s.cycles);
    }
    table.print(std::cout);
    json.table("a2_return_stack_depth", table);
    std::cout << "\n(The paper's \"small stack\" is enough: depth 8 "
                 "already captures nearly all returns.)\n";
}

void
ablateLvSorting(JsonReport &json)
{
    std::cout << "\nA3 — link-vector ordering: one-byte call-site "
                 "share with and without frequency sorting:\n\n";

    ProgramConfig pc;
    pc.modules = 4;
    pc.procsPerModule = 16;
    pc.callSitesPerProc = 5;
    pc.localCallFraction = 0.1; // stress external calls
    pc.seed = 31;
    const auto modules = generateProgram(pc);

    stats::Table table({"LV ordering", "call-site bytes",
                        "1-byte ext calls (dynamic)", "code bytes"});
    for (const bool sorted : {true, false}) {
        LinkPlan plan;
        plan.sortLvByUse = sorted;
        Rig rig(modules, plan, MachineConfig{});
        runSteadyState(rig, generatedEntryModule(),
                       generatedEntryProc(), {8});

        CountT site_bytes = 0;
        for (const auto &pm : rig.image.modules())
            site_bytes += pm.callSiteBytes;

        // Dynamic share of external calls using one-byte EFC0..EFC7.
        const MachineStats &s = rig.machine->stats();
        CountT one_byte = 0;
        CountT all_ext = 0;
        for (unsigned op = 0; op < 256; ++op) {
            const auto &info = isa::opInfo(static_cast<std::uint8_t>(op));
            if (info.cls != isa::OpClass::ExtCall)
                continue;
            all_ext += s.opCount[op];
            if (info.kind == isa::OperandKind::None)
                one_byte += s.opCount[op];
        }
        table.row(sorted ? "by static use (paper)" : "declaration order",
                  site_bytes,
                  all_ext ? stats::percent(
                                static_cast<double>(one_byte) / all_ext)
                          : "-",
                  rig.image.codeBytes());
    }
    table.print(std::cout);
    json.table("a3_lv_sorting", table);
}

void
ablateFastFrameSize(JsonReport &json)
{
    std::cout << "\nA4 — the standard fast-frame size (§7.1 chose 80 "
                 "bytes = 40 words):\n\n";
    stats::Table table({"standard words", "fast allocs",
                        "heap words used", "cycles"});
    for (const unsigned words : {12u, 24u, 40u, 80u, 160u}) {
        MachineConfig config;
        config.impl = Impl::Banked;
        config.fastFramePayloadWords = words;
        TraceRunner runner(config, FrameSizeDist::mesa(), 1);
        TraceConfig tc;
        tc.length = 100'000;
        tc.seed = 77;
        runner.run(generateTrace(tc));
        const MachineStats &s = runner.machine().stats();
        const auto &hs = runner.machine().heap().stats();
        const CountT total = s.fastFrameAllocs + s.slowFrameAllocs;
        table.row(words,
                  stats::percent(static_cast<double>(s.fastFrameAllocs) /
                                 total),
                  hs.blockWords, s.cycles);
    }
    table.print(std::cout);
    json.table("a4_fast_frame_size", table);
    std::cout << "\n(Small standards miss the frame-size tail; large "
                 "ones waste heap — 40 words covers ~95% as the paper "
                 "argued.)\n";
}

void
BM_FibBanked(benchmark::State &state)
{
    MachineConfig config;
    config.impl = Impl::Banked;
    config.flushDirtyOnly = state.range(0) != 0;
    LinkPlan plan;
    plan.lowering = CallLowering::Direct;
    Rig rig(fibProgram(), plan, config);
    for (auto _ : state)
        runToResult(*rig.machine, "Fib", "main", {14});
}
BENCHMARK(BM_FibBanked)->Arg(0)->Arg(1);

} // namespace

int
main(int argc, char **argv)
{
    JsonReport json(argc, argv, "ablations");
    ablateDirtyFlush(json);
    ablateReturnStackDepth(json);
    ablateLvSorting(json);
    ablateFastFrameSize(json);
    json.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
