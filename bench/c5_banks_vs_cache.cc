/**
 * @file
 * Experiment C5 — "Why not just a cache?" (§7.3).
 *
 * Paper arguments reproduced as numbers:
 *  - a register (bank) access takes one cycle, a cache access two;
 *  - "Half or more of all data memory references may be to local
 *    variables. Removing this burden from the cache effectively
 *    doubles its bandwidth";
 *  - the bank addressing needs no comparators or associative lookup
 *    (represented here by the latency difference).
 *
 * Same program, three configurations: I2 with raw storage, I2 with a
 * data cache, I4 with register banks (plus the same cache for the
 * remaining data traffic).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

using namespace fpc;
using namespace fpc::bench;

namespace
{

void
printComparison(JsonReport &json)
{
    std::cout << "Local-variable traffic: register banks vs a data "
                 "cache (paper §7.3):\n\n";
    stats::Table table({"configuration", "local refs via banks",
                        "local refs via storage/cache",
                        "locals of all data refs",
                        "cache accesses", "cache hit rate",
                        "total cycles"});

    struct Setup
    {
        const char *name;
        Impl impl;
        bool cache;
    };
    for (const Setup &setup :
         {Setup{"I2, raw storage", Impl::Mesa, false},
          Setup{"I2 + data cache (2-cycle hits)", Impl::Mesa, true},
          Setup{"I4 banks (1-cycle) + cache for the rest",
                Impl::Banked, true}}) {
        MachineConfig config;
        config.impl = setup.impl;
        config.useDataCache = setup.cache;
        LinkPlan plan;
        plan.lowering = setup.impl == Impl::Banked
                            ? CallLowering::Direct
                            : CallLowering::Mesa;

        Rig rig(primesProgram(), plan, config);
        runSteadyState(rig, "Primes", "main", {400});

        const MachineStats &s = rig.machine->stats();
        const CountT data_refs =
            rig.mem->reads(AccessKind::Data) +
            rig.mem->writes(AccessKind::Data);
        const CountT local_mem = s.localMemAccesses;
        const CountT local_bank = s.localBankAccesses;
        const double local_share =
            static_cast<double>(local_mem + local_bank) /
            (data_refs + local_bank);
        const Cache *cache = rig.machine->dataCache();

        table.row(setup.name, local_bank, local_mem,
                  stats::percent(local_share),
                  cache ? std::to_string(cache->accesses()) : "-",
                  cache ? stats::percent(cache->hitRate()) : "-",
                  s.cycles);
    }
    table.print(std::cout);
    json.table("banks_vs_cache", table);
    std::cout
        << "\nPaper shape: locals are half or more of data "
           "references; banks remove nearly all of them from the "
           "cache (freeing its bandwidth) and serve them at one cycle "
           "instead of two.\n";
}

void
BM_LocalAccess(benchmark::State &state)
{
    // Pure local-variable traffic: I2 (memory) vs I4 (bank).
    MachineConfig config;
    config.impl = static_cast<Impl>(state.range(0));
    Rig rig(lang::compile(R"(
        module Spin;
        proc main(n) {
            var a, b, i;
            i = 0;
            while (i < n) { a = a + b; b = a ^ i; i = i + 1; }
            return a;
        }
    )"),
            LinkPlan{}, config);
    for (auto _ : state)
        runToResult(*rig.machine, "Spin", "main", {1000});
    state.SetLabel(implName(config.impl));
}
BENCHMARK(BM_LocalAccess)
    ->Arg(static_cast<int>(Impl::Mesa))
    ->Arg(static_cast<int>(Impl::Banked));

} // namespace

int
main(int argc, char **argv)
{
    JsonReport json(argc, argv, "c5_banks_vs_cache");
    printComparison(json);
    json.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
