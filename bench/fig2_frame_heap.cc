/**
 * @file
 * Experiment F2 — Figure 2: the frame allocation heap (§5.3).
 *
 * Paper claims regenerated here:
 *  - "Only three memory references are required to allocate a frame
 *    ... and four to free it."
 *  - "Frame sizes increase from a minimum of about 16 bytes in steps
 *    of about 20%; less than 20 steps are needed..."
 *  - "This scheme wastes only 10% of the space in fragmentation."
 *  - No LIFO discipline: random-order frees work identically.
 *
 * Also sweeps the growth factor, exposing the fragmentation-vs-reuse
 * tradeoff the paper mentions ("fewer frame sizes means more
 * fragmentation, but more chance to use an existing free frame").
 */

#include <algorithm>

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "frames/frame_heap.hh"
#include "workload/frame_dist.hh"

using namespace fpc;
using namespace fpc::bench;

namespace
{

void
printSizeClasses(JsonReport &json)
{
    const SizeClasses classes = SizeClasses::standard();
    std::cout << "The allocation vector's size classes (\"about 20% "
                 "steps, fewer than 20 classes\"):\n\n";
    stats::Table table({"fsi", "payload words", "bytes", "block words",
                        "step"});
    for (unsigned fsi = 0; fsi < classes.numClasses(); ++fsi) {
        const double step =
            fsi ? 100.0 * classes.classWords(fsi) /
                          classes.classWords(fsi - 1) -
                      100.0
                : 0.0;
        table.row(fsi, classes.classWords(fsi),
                  classes.classWords(fsi) * 2, classes.blockWords(fsi),
                  fsi ? stats::fixed(step, 0) + "%" : "-");
    }
    table.print(std::cout);
    json.table("size_classes", table);
}

/** Exercise the heap with a Mesa-like size mix and measure. */
void
measureHeap(double growth, unsigned num_classes, stats::Table &table,
            bool lifo)
{
    const SystemLayout layout;
    Memory mem(layout.memWords);
    SizeClasses classes(8, growth, num_classes);
    FrameHeap heap(mem, layout, classes);
    const FrameSizeDist dist = FrameSizeDist::mesa();
    Rng rng(99);

    std::vector<Addr> live;
    const unsigned ops = 200'000;

    // Warm up the free lists, then measure steady state.
    for (unsigned i = 0; i < 600; ++i)
        live.push_back(heap.allocWords(
            std::min(dist.sample(rng), classes.maxWords())));
    for (Addr lf : live)
        heap.free(lf);
    live.clear();
    heap.resetStats();
    mem.resetStats();

    for (unsigned i = 0; i < ops; ++i) {
        const bool do_alloc =
            live.size() < 4 || (live.size() < 600 && rng.chance(0.5));
        if (do_alloc) {
            live.push_back(heap.allocWords(
                std::min(dist.sample(rng), classes.maxWords())));
        } else if (lifo) {
            heap.free(live.back());
            live.pop_back();
        } else {
            // Random-order frees: the paper's no-LIFO point.
            const std::size_t pick = rng.uniform(0, live.size() - 1);
            heap.free(live[pick]);
            live[pick] = live.back();
            live.pop_back();
        }
    }

    const FrameHeapStats &s = heap.stats();
    table.row(stats::fixed(growth, 2), num_classes,
              lifo ? "LIFO" : "random",
              stats::fixed(static_cast<double>(s.refsAlloc) / s.allocs,
                           3),
              stats::fixed(static_cast<double>(s.refsFree) / s.frees,
                           3),
              stats::percent(s.fragmentation()), s.softwareTraps);
}

void
printHeapBehaviour(JsonReport &json)
{
    std::cout << "\nHeap behaviour under a Mesa-like frame-size mix "
                 "(paper: 3 refs/alloc, 4 refs/free, ~10% "
                 "fragmentation, no LIFO requirement):\n\n";
    stats::Table table({"growth", "classes", "free order", "refs/alloc",
                        "refs/free", "fragmentation", "traps"});
    measureHeap(1.2, 19, table, true);
    measureHeap(1.2, 19, table, false);
    // The tradeoff sweep.
    measureHeap(1.1, 28, table, false);
    measureHeap(1.35, 13, table, false);
    measureHeap(1.5, 10, table, false);
    table.print(std::cout);
    json.table("heap_behaviour", table);
    std::cout
        << "\nNote (EXPERIMENTS.md): finer classes (growth 1.1) "
           "reduce fragmentation but need more classes; coarser ones "
           "waste more — the ~20% step keeps waste near the paper's "
           "10%.\n";
}

void
BM_AllocFree(benchmark::State &state)
{
    const SystemLayout layout;
    Memory mem(layout.memWords);
    FrameHeap heap(mem, layout, SizeClasses::standard());
    const unsigned fsi = state.range(0);
    // Prime the list.
    heap.free(heap.alloc(fsi));
    for (auto _ : state) {
        const Addr lf = heap.alloc(fsi);
        heap.free(lf);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocFree)->Arg(0)->Arg(5)->Arg(12);

} // namespace

int
main(int argc, char **argv)
{
    JsonReport json(argc, argv, "fig2_frame_heap");
    printSizeClasses(json);
    printHeapBehaviour(json);
    json.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
