/**
 * @file
 * Experiment F1 — Figure 1: levels of indirection in a procedure call.
 *
 * Regenerates the figure as data: for one EXTERNALCALL under the Mesa
 * implementation, walk and print the four tables the call goes
 * through (link vector -> GFT -> global frame -> entry vector), then
 * measure storage references per transfer for every call variety.
 *
 * Paper expectations: the external call makes four table references
 * before the instruction address is known; LOCALCALL "has only one
 * level of indirection"; DIRECTCALL none (the IFU reads GF and fsi
 * with the prefetch stream); FCALL (the §4 scheme) none but carries
 * the descriptor inline.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "common/strfmt.hh"
#include "xfer/context.hh"

using namespace fpc;
using namespace fpc::bench;

namespace
{

std::vector<Module>
twoModules()
{
    return lang::compile(R"(
        module Client;
        proc leaf() { return 7; }
        proc main(n) {
            var acc, i;
            i = 0;
            while (i < n) {
                acc = acc + Lib.work(i) + leaf();
                i = i + 1;
            }
            return acc;
        }

        module Lib;
        proc work(x) { return x * 3; }
    )");
}

void
printIndirectionChain(JsonReport &json)
{
    Rig rig(twoModules(), LinkPlan{}, MachineConfig{});
    const SystemLayout &layout = rig.image.layout();
    Memory &mem = *rig.mem;

    // Client's first LV slot binds Lib.work (hottest extern).
    const PlacedInstance &client = rig.image.instance("Client");
    const Addr lv_slot = client.gfAddr - 1;
    const Word desc = mem.peek(lv_slot);
    const Context ctx = unpackContext(desc, layout);

    const Word gft_raw = mem.peek(layout.gftAddr + ctx.env);
    const GftEntry gft = unpackGftEntry(gft_raw, layout);
    const Word code_seg = mem.peek(gft.gfAddr);
    const CodeByteAddr code_base = layout.codeSegBase(code_seg);
    const unsigned ev_index = ctx.code + gft.bias * 32;
    const Word ev_offset =
        mem.peek(code_base / wordBytes + ev_index);
    const unsigned fsi = mem.peekByte(code_base + ev_offset);

    std::cout << "Figure 1 — the four levels of indirection for "
                 "EXTERNALCALL Lib.work from Client:\n\n";
    stats::Table chain({"step", "table", "address", "holds", "value"});
    chain.row(1, "link vector LV", lv_slot, "procedure descriptor",
              strfmt("tag=proc env={} code={}", ctx.env, ctx.code));
    chain.row(2, "global frame table GFT", layout.gftAddr + ctx.env,
              "global frame address + bias",
              strfmt("gf={} bias={}", gft.gfAddr, gft.bias));
    chain.row(3, "global frame", gft.gfAddr, "code base",
              strfmt("segment {} -> byte {}", code_seg, code_base));
    chain.row(4, "entry vector EV",
              code_base / wordBytes + ev_index,
              "byte offset of entry", ev_offset);
    chain.row("-", "code", code_base + ev_offset,
              "fsi byte, then the first instruction", fsi);
    chain.print(std::cout);
    json.table("indirection_chain", chain);
}

/** Measure per-kind storage references by running real programs. */
void
printTransferCosts(JsonReport &json)
{
    std::cout << "\nStorage references per transfer, by call variety "
                 "and implementation:\n\n";
    stats::Table table({"impl", "transfer", "count", "mean refs",
                        "mean cycles", "table refs before PC known"});

    for (const EngineCombo &combo : allEngines()) {
        Rig rig(twoModules(), planFor(combo), configFor(combo));
        runSteadyState(rig, "Client", "main", {60});
        const MachineStats &s = rig.machine->stats();

        auto row = [&](XferKind kind, const char *levels) {
            const auto &refs = s.xferRefs[static_cast<unsigned>(kind)];
            const auto &cycles =
                s.xferCycles[static_cast<unsigned>(kind)];
            if (refs.count() == 0)
                return;
            table.row(implName(combo.impl), xferKindName(kind),
                      refs.count(), stats::fixed(refs.mean(), 2),
                      stats::fixed(cycles.mean(), 1), levels);
        };
        row(XferKind::ExtCall, "4 (LV, GFT, GF, EV)");
        row(XferKind::LocalCall, "1 (EV)");
        row(XferKind::DirectCall, "0 (header in code stream)");
        row(XferKind::FatCall, "0 (descriptor inline)");
        row(XferKind::Return, "-");
    }
    table.print(std::cout);
    json.table("transfer_costs", table);
    std::cout << "\nPaper shape: EXTERNALCALL pays the most "
                 "references, LOCALCALL fewer, DIRECTCALL/FCALL the "
                 "fewest; I4 drives call+return references to zero.\n";
}

// ---- google-benchmark microbenchmarks --------------------------------

void
BM_ExternalCallReturn(benchmark::State &state)
{
    MachineConfig config;
    config.impl = static_cast<Impl>(state.range(0));
    TraceRunner runner(config);
    for (auto _ : state) {
        runner.call(1);
        runner.ret();
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ExternalCallReturn)
    ->Arg(static_cast<int>(Impl::Simple))
    ->Arg(static_cast<int>(Impl::Mesa))
    ->Arg(static_cast<int>(Impl::Ifu))
    ->Arg(static_cast<int>(Impl::Banked));

} // namespace

int
main(int argc, char **argv)
{
    JsonReport json(argc, argv, "fig1_indirection");
    printIndirectionChain(json);
    printTransferCosts(json);
    json.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
