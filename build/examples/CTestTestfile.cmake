# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_coroutines "/root/repo/build/examples/coroutines")
set_tests_properties(example_coroutines PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_minimesa "/root/repo/build/examples/minimesa")
set_tests_properties(example_minimesa PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_engine_shootout "/root/repo/build/examples/engine_shootout")
set_tests_properties(example_engine_shootout PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
