file(REMOVE_RECURSE
  "CMakeFiles/engine_shootout.dir/engine_shootout.cpp.o"
  "CMakeFiles/engine_shootout.dir/engine_shootout.cpp.o.d"
  "engine_shootout"
  "engine_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
