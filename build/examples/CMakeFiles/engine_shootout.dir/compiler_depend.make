# Empty compiler generated dependencies file for engine_shootout.
# This may be replaced when dependencies are built.
