file(REMOVE_RECURSE
  "CMakeFiles/minimesa.dir/minimesa.cpp.o"
  "CMakeFiles/minimesa.dir/minimesa.cpp.o.d"
  "minimesa"
  "minimesa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimesa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
