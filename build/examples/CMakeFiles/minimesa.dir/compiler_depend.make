# Empty compiler generated dependencies file for minimesa.
# This may be replaced when dependencies are built.
