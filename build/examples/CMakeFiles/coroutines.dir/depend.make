# Empty dependencies file for coroutines.
# This may be replaced when dependencies are built.
