file(REMOVE_RECURSE
  "CMakeFiles/coroutines.dir/coroutines.cpp.o"
  "CMakeFiles/coroutines.dir/coroutines.cpp.o.d"
  "coroutines"
  "coroutines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coroutines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
