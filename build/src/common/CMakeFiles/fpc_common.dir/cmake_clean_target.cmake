file(REMOVE_RECURSE
  "libfpc_common.a"
)
