file(REMOVE_RECURSE
  "CMakeFiles/fpc_common.dir/logging.cc.o"
  "CMakeFiles/fpc_common.dir/logging.cc.o.d"
  "CMakeFiles/fpc_common.dir/random.cc.o"
  "CMakeFiles/fpc_common.dir/random.cc.o.d"
  "libfpc_common.a"
  "libfpc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
