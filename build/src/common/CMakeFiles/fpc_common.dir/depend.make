# Empty dependencies file for fpc_common.
# This may be replaced when dependencies are built.
