file(REMOVE_RECURSE
  "CMakeFiles/fpc_program.dir/loader.cc.o"
  "CMakeFiles/fpc_program.dir/loader.cc.o.d"
  "CMakeFiles/fpc_program.dir/lower.cc.o"
  "CMakeFiles/fpc_program.dir/lower.cc.o.d"
  "CMakeFiles/fpc_program.dir/module.cc.o"
  "CMakeFiles/fpc_program.dir/module.cc.o.d"
  "CMakeFiles/fpc_program.dir/relocate.cc.o"
  "CMakeFiles/fpc_program.dir/relocate.cc.o.d"
  "libfpc_program.a"
  "libfpc_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpc_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
