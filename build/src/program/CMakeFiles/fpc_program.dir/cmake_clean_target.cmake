file(REMOVE_RECURSE
  "libfpc_program.a"
)
