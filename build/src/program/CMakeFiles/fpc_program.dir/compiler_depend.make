# Empty compiler generated dependencies file for fpc_program.
# This may be replaced when dependencies are built.
