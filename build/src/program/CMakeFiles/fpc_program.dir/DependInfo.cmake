
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/program/loader.cc" "src/program/CMakeFiles/fpc_program.dir/loader.cc.o" "gcc" "src/program/CMakeFiles/fpc_program.dir/loader.cc.o.d"
  "/root/repo/src/program/lower.cc" "src/program/CMakeFiles/fpc_program.dir/lower.cc.o" "gcc" "src/program/CMakeFiles/fpc_program.dir/lower.cc.o.d"
  "/root/repo/src/program/module.cc" "src/program/CMakeFiles/fpc_program.dir/module.cc.o" "gcc" "src/program/CMakeFiles/fpc_program.dir/module.cc.o.d"
  "/root/repo/src/program/relocate.cc" "src/program/CMakeFiles/fpc_program.dir/relocate.cc.o" "gcc" "src/program/CMakeFiles/fpc_program.dir/relocate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/fpc_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fpc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/xfer/CMakeFiles/fpc_xfer.dir/DependInfo.cmake"
  "/root/repo/build/src/frames/CMakeFiles/fpc_frames.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fpc_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
