
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/codegen.cc" "src/lang/CMakeFiles/fpc_lang.dir/codegen.cc.o" "gcc" "src/lang/CMakeFiles/fpc_lang.dir/codegen.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "src/lang/CMakeFiles/fpc_lang.dir/lexer.cc.o" "gcc" "src/lang/CMakeFiles/fpc_lang.dir/lexer.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/lang/CMakeFiles/fpc_lang.dir/parser.cc.o" "gcc" "src/lang/CMakeFiles/fpc_lang.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/fpc_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/fpc_program.dir/DependInfo.cmake"
  "/root/repo/build/src/frames/CMakeFiles/fpc_frames.dir/DependInfo.cmake"
  "/root/repo/build/src/xfer/CMakeFiles/fpc_xfer.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/fpc_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fpc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fpc_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
