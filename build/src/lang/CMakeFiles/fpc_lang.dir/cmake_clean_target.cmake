file(REMOVE_RECURSE
  "libfpc_lang.a"
)
