# Empty dependencies file for fpc_lang.
# This may be replaced when dependencies are built.
