file(REMOVE_RECURSE
  "CMakeFiles/fpc_lang.dir/codegen.cc.o"
  "CMakeFiles/fpc_lang.dir/codegen.cc.o.d"
  "CMakeFiles/fpc_lang.dir/lexer.cc.o"
  "CMakeFiles/fpc_lang.dir/lexer.cc.o.d"
  "CMakeFiles/fpc_lang.dir/parser.cc.o"
  "CMakeFiles/fpc_lang.dir/parser.cc.o.d"
  "libfpc_lang.a"
  "libfpc_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpc_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
