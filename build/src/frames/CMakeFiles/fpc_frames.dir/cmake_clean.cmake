file(REMOVE_RECURSE
  "CMakeFiles/fpc_frames.dir/frame_heap.cc.o"
  "CMakeFiles/fpc_frames.dir/frame_heap.cc.o.d"
  "CMakeFiles/fpc_frames.dir/size_classes.cc.o"
  "CMakeFiles/fpc_frames.dir/size_classes.cc.o.d"
  "libfpc_frames.a"
  "libfpc_frames.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpc_frames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
