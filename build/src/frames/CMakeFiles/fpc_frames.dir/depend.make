# Empty dependencies file for fpc_frames.
# This may be replaced when dependencies are built.
