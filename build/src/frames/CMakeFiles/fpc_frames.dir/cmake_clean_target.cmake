file(REMOVE_RECURSE
  "libfpc_frames.a"
)
