# Empty dependencies file for fpc_stats.
# This may be replaced when dependencies are built.
