file(REMOVE_RECURSE
  "CMakeFiles/fpc_stats.dir/stats.cc.o"
  "CMakeFiles/fpc_stats.dir/stats.cc.o.d"
  "CMakeFiles/fpc_stats.dir/table.cc.o"
  "CMakeFiles/fpc_stats.dir/table.cc.o.d"
  "libfpc_stats.a"
  "libfpc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
