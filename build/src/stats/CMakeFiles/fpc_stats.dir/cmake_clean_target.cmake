file(REMOVE_RECURSE
  "libfpc_stats.a"
)
