file(REMOVE_RECURSE
  "CMakeFiles/fpc_memory.dir/cache.cc.o"
  "CMakeFiles/fpc_memory.dir/cache.cc.o.d"
  "CMakeFiles/fpc_memory.dir/memory.cc.o"
  "CMakeFiles/fpc_memory.dir/memory.cc.o.d"
  "libfpc_memory.a"
  "libfpc_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpc_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
