# Empty compiler generated dependencies file for fpc_memory.
# This may be replaced when dependencies are built.
