file(REMOVE_RECURSE
  "libfpc_memory.a"
)
