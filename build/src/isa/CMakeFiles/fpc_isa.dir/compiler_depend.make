# Empty compiler generated dependencies file for fpc_isa.
# This may be replaced when dependencies are built.
