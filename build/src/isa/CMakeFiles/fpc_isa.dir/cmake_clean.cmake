file(REMOVE_RECURSE
  "CMakeFiles/fpc_isa.dir/decode.cc.o"
  "CMakeFiles/fpc_isa.dir/decode.cc.o.d"
  "CMakeFiles/fpc_isa.dir/disasm.cc.o"
  "CMakeFiles/fpc_isa.dir/disasm.cc.o.d"
  "CMakeFiles/fpc_isa.dir/opcodes.cc.o"
  "CMakeFiles/fpc_isa.dir/opcodes.cc.o.d"
  "libfpc_isa.a"
  "libfpc_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpc_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
