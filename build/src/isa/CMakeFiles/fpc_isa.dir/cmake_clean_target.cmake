file(REMOVE_RECURSE
  "libfpc_isa.a"
)
