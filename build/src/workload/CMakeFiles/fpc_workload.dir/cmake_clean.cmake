file(REMOVE_RECURSE
  "CMakeFiles/fpc_workload.dir/frame_dist.cc.o"
  "CMakeFiles/fpc_workload.dir/frame_dist.cc.o.d"
  "CMakeFiles/fpc_workload.dir/synthetic.cc.o"
  "CMakeFiles/fpc_workload.dir/synthetic.cc.o.d"
  "CMakeFiles/fpc_workload.dir/trace.cc.o"
  "CMakeFiles/fpc_workload.dir/trace.cc.o.d"
  "libfpc_workload.a"
  "libfpc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
