# Empty compiler generated dependencies file for fpc_workload.
# This may be replaced when dependencies are built.
