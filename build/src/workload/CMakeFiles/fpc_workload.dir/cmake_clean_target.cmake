file(REMOVE_RECURSE
  "libfpc_workload.a"
)
