file(REMOVE_RECURSE
  "CMakeFiles/fpc_xfer.dir/context.cc.o"
  "CMakeFiles/fpc_xfer.dir/context.cc.o.d"
  "CMakeFiles/fpc_xfer.dir/layout.cc.o"
  "CMakeFiles/fpc_xfer.dir/layout.cc.o.d"
  "libfpc_xfer.a"
  "libfpc_xfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpc_xfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
