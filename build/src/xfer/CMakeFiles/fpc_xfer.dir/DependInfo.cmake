
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xfer/context.cc" "src/xfer/CMakeFiles/fpc_xfer.dir/context.cc.o" "gcc" "src/xfer/CMakeFiles/fpc_xfer.dir/context.cc.o.d"
  "/root/repo/src/xfer/layout.cc" "src/xfer/CMakeFiles/fpc_xfer.dir/layout.cc.o" "gcc" "src/xfer/CMakeFiles/fpc_xfer.dir/layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/fpc_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fpc_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
