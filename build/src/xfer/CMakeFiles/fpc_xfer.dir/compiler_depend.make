# Empty compiler generated dependencies file for fpc_xfer.
# This may be replaced when dependencies are built.
