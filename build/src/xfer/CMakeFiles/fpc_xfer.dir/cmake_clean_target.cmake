file(REMOVE_RECURSE
  "libfpc_xfer.a"
)
