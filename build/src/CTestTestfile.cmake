# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("stats")
subdirs("memory")
subdirs("isa")
subdirs("xfer")
subdirs("frames")
subdirs("program")
subdirs("machine")
subdirs("asm")
subdirs("lang")
subdirs("workload")
