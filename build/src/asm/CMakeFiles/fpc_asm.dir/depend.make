# Empty dependencies file for fpc_asm.
# This may be replaced when dependencies are built.
