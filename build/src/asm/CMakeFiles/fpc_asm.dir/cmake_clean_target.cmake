file(REMOVE_RECURSE
  "libfpc_asm.a"
)
