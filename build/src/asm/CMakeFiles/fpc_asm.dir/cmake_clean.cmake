file(REMOVE_RECURSE
  "CMakeFiles/fpc_asm.dir/builder.cc.o"
  "CMakeFiles/fpc_asm.dir/builder.cc.o.d"
  "libfpc_asm.a"
  "libfpc_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpc_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
