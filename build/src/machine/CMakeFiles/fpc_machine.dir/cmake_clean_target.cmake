file(REMOVE_RECURSE
  "libfpc_machine.a"
)
