# Empty compiler generated dependencies file for fpc_machine.
# This may be replaced when dependencies are built.
