file(REMOVE_RECURSE
  "CMakeFiles/fpc_machine.dir/banks.cc.o"
  "CMakeFiles/fpc_machine.dir/banks.cc.o.d"
  "CMakeFiles/fpc_machine.dir/machine.cc.o"
  "CMakeFiles/fpc_machine.dir/machine.cc.o.d"
  "CMakeFiles/fpc_machine.dir/transfers.cc.o"
  "CMakeFiles/fpc_machine.dir/transfers.cc.o.d"
  "libfpc_machine.a"
  "libfpc_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpc_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
