# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(fpcvm_primes "/root/repo/build/tools/fpcvm" "/root/repo/examples/programs/primes.mm" "20")
set_tests_properties(fpcvm_primes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(fpcvm_sort_banked "/root/repo/build/tools/fpcvm" "--impl=banked" "--linkage=direct" "--short-calls" "--stats" "/root/repo/examples/programs/sort.mm" "8")
set_tests_properties(fpcvm_sort_banked PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(fpcvm_disasm "/root/repo/build/tools/fpcvm" "--disasm" "/root/repo/examples/programs/primes.mm" "10")
set_tests_properties(fpcvm_disasm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(fpcvm_queens "/root/repo/build/tools/fpcvm" "--impl=banked" "--linkage=direct" "/root/repo/examples/programs/queens.mm" "6")
set_tests_properties(fpcvm_queens PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
