# Empty compiler generated dependencies file for fpcvm.
# This may be replaced when dependencies are built.
