file(REMOVE_RECURSE
  "CMakeFiles/fpcvm.dir/fpcvm.cc.o"
  "CMakeFiles/fpcvm.dir/fpcvm.cc.o.d"
  "fpcvm"
  "fpcvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpcvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
