file(REMOVE_RECURSE
  "CMakeFiles/test_machine_misc.dir/machine/test_misc.cc.o"
  "CMakeFiles/test_machine_misc.dir/machine/test_misc.cc.o.d"
  "test_machine_misc"
  "test_machine_misc.pdb"
  "test_machine_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
