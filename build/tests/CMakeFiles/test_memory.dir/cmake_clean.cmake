file(REMOVE_RECURSE
  "CMakeFiles/test_memory.dir/memory/test_memory.cc.o"
  "CMakeFiles/test_memory.dir/memory/test_memory.cc.o.d"
  "test_memory"
  "test_memory.pdb"
  "test_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
