file(REMOVE_RECURSE
  "CMakeFiles/test_isa.dir/isa/test_isa.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_isa.cc.o.d"
  "test_isa"
  "test_isa.pdb"
  "test_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
