# Empty dependencies file for test_xfer.
# This may be replaced when dependencies are built.
