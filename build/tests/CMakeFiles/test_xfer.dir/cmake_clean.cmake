file(REMOVE_RECURSE
  "CMakeFiles/test_xfer.dir/xfer/test_context.cc.o"
  "CMakeFiles/test_xfer.dir/xfer/test_context.cc.o.d"
  "test_xfer"
  "test_xfer.pdb"
  "test_xfer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
