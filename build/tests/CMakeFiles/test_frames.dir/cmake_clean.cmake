file(REMOVE_RECURSE
  "CMakeFiles/test_frames.dir/frames/test_frame_heap.cc.o"
  "CMakeFiles/test_frames.dir/frames/test_frame_heap.cc.o.d"
  "test_frames"
  "test_frames.pdb"
  "test_frames[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
