# Empty compiler generated dependencies file for test_frames.
# This may be replaced when dependencies are built.
