# Empty dependencies file for test_asm.
# This may be replaced when dependencies are built.
