file(REMOVE_RECURSE
  "CMakeFiles/test_asm.dir/asm/test_builder.cc.o"
  "CMakeFiles/test_asm.dir/asm/test_builder.cc.o.d"
  "test_asm"
  "test_asm.pdb"
  "test_asm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
