file(REMOVE_RECURSE
  "CMakeFiles/test_lang.dir/lang/test_arrays.cc.o"
  "CMakeFiles/test_lang.dir/lang/test_arrays.cc.o.d"
  "CMakeFiles/test_lang.dir/lang/test_compiler.cc.o"
  "CMakeFiles/test_lang.dir/lang/test_compiler.cc.o.d"
  "CMakeFiles/test_lang.dir/lang/test_lang_extra.cc.o"
  "CMakeFiles/test_lang.dir/lang/test_lang_extra.cc.o.d"
  "test_lang"
  "test_lang.pdb"
  "test_lang[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
