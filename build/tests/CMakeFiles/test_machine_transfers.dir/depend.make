# Empty dependencies file for test_machine_transfers.
# This may be replaced when dependencies are built.
