file(REMOVE_RECURSE
  "CMakeFiles/test_machine_transfers.dir/machine/test_transfers.cc.o"
  "CMakeFiles/test_machine_transfers.dir/machine/test_transfers.cc.o.d"
  "test_machine_transfers"
  "test_machine_transfers.pdb"
  "test_machine_transfers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
