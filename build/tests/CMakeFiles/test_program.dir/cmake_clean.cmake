file(REMOVE_RECURSE
  "CMakeFiles/test_program.dir/program/test_loader.cc.o"
  "CMakeFiles/test_program.dir/program/test_loader.cc.o.d"
  "CMakeFiles/test_program.dir/program/test_loader_edge.cc.o"
  "CMakeFiles/test_program.dir/program/test_loader_edge.cc.o.d"
  "CMakeFiles/test_program.dir/program/test_lower.cc.o"
  "CMakeFiles/test_program.dir/program/test_lower.cc.o.d"
  "CMakeFiles/test_program.dir/program/test_relocate.cc.o"
  "CMakeFiles/test_program.dir/program/test_relocate.cc.o.d"
  "test_program"
  "test_program.pdb"
  "test_program[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
