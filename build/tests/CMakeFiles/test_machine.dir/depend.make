# Empty dependencies file for test_machine.
# This may be replaced when dependencies are built.
