file(REMOVE_RECURSE
  "CMakeFiles/test_machine_semantics.dir/machine/test_semantics.cc.o"
  "CMakeFiles/test_machine_semantics.dir/machine/test_semantics.cc.o.d"
  "test_machine_semantics"
  "test_machine_semantics.pdb"
  "test_machine_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
