# Empty compiler generated dependencies file for test_machine_semantics.
# This may be replaced when dependencies are built.
