# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_lang[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_xfer[1]_include.cmake")
include("/root/repo/build/tests/test_frames[1]_include.cmake")
include("/root/repo/build/tests/test_program[1]_include.cmake")
include("/root/repo/build/tests/test_machine_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_machine_transfers[1]_include.cmake")
include("/root/repo/build/tests/test_asm[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_machine_misc[1]_include.cmake")
