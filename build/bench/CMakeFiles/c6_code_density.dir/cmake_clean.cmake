file(REMOVE_RECURSE
  "CMakeFiles/c6_code_density.dir/c6_code_density.cc.o"
  "CMakeFiles/c6_code_density.dir/c6_code_density.cc.o.d"
  "c6_code_density"
  "c6_code_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c6_code_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
