# Empty dependencies file for c6_code_density.
# This may be replaced when dependencies are built.
