file(REMOVE_RECURSE
  "CMakeFiles/c7_generality.dir/c7_generality.cc.o"
  "CMakeFiles/c7_generality.dir/c7_generality.cc.o.d"
  "c7_generality"
  "c7_generality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c7_generality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
