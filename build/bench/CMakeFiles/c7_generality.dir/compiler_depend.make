# Empty compiler generated dependencies file for c7_generality.
# This may be replaced when dependencies are built.
