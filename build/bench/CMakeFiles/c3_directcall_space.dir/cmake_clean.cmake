file(REMOVE_RECURSE
  "CMakeFiles/c3_directcall_space.dir/c3_directcall_space.cc.o"
  "CMakeFiles/c3_directcall_space.dir/c3_directcall_space.cc.o.d"
  "c3_directcall_space"
  "c3_directcall_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c3_directcall_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
