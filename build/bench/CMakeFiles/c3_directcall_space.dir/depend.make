# Empty dependencies file for c3_directcall_space.
# This may be replaced when dependencies are built.
