file(REMOVE_RECURSE
  "CMakeFiles/fig2_frame_heap.dir/fig2_frame_heap.cc.o"
  "CMakeFiles/fig2_frame_heap.dir/fig2_frame_heap.cc.o.d"
  "fig2_frame_heap"
  "fig2_frame_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_frame_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
