# Empty dependencies file for fig2_frame_heap.
# This may be replaced when dependencies are built.
