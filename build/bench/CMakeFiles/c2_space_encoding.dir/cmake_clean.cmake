file(REMOVE_RECURSE
  "CMakeFiles/c2_space_encoding.dir/c2_space_encoding.cc.o"
  "CMakeFiles/c2_space_encoding.dir/c2_space_encoding.cc.o.d"
  "c2_space_encoding"
  "c2_space_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2_space_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
