# Empty dependencies file for c2_space_encoding.
# This may be replaced when dependencies are built.
