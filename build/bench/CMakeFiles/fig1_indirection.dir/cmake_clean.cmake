file(REMOVE_RECURSE
  "CMakeFiles/fig1_indirection.dir/fig1_indirection.cc.o"
  "CMakeFiles/fig1_indirection.dir/fig1_indirection.cc.o.d"
  "fig1_indirection"
  "fig1_indirection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_indirection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
