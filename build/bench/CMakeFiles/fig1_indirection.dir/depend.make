# Empty dependencies file for fig1_indirection.
# This may be replaced when dependencies are built.
