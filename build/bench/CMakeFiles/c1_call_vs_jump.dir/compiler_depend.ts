# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for c1_call_vs_jump.
