# Empty dependencies file for c1_call_vs_jump.
# This may be replaced when dependencies are built.
