file(REMOVE_RECURSE
  "CMakeFiles/c1_call_vs_jump.dir/c1_call_vs_jump.cc.o"
  "CMakeFiles/c1_call_vs_jump.dir/c1_call_vs_jump.cc.o.d"
  "c1_call_vs_jump"
  "c1_call_vs_jump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c1_call_vs_jump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
