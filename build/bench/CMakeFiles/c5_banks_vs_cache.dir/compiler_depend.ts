# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for c5_banks_vs_cache.
