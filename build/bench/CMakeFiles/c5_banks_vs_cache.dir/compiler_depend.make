# Empty compiler generated dependencies file for c5_banks_vs_cache.
# This may be replaced when dependencies are built.
