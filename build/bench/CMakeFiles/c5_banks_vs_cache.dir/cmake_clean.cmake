file(REMOVE_RECURSE
  "CMakeFiles/c5_banks_vs_cache.dir/c5_banks_vs_cache.cc.o"
  "CMakeFiles/c5_banks_vs_cache.dir/c5_banks_vs_cache.cc.o.d"
  "c5_banks_vs_cache"
  "c5_banks_vs_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c5_banks_vs_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
