file(REMOVE_RECURSE
  "CMakeFiles/fig3_register_banks.dir/fig3_register_banks.cc.o"
  "CMakeFiles/fig3_register_banks.dir/fig3_register_banks.cc.o.d"
  "fig3_register_banks"
  "fig3_register_banks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_register_banks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
