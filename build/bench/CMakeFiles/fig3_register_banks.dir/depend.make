# Empty dependencies file for fig3_register_banks.
# This may be replaced when dependencies are built.
