# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for c4_frame_alloc_speed.
