file(REMOVE_RECURSE
  "CMakeFiles/c4_frame_alloc_speed.dir/c4_frame_alloc_speed.cc.o"
  "CMakeFiles/c4_frame_alloc_speed.dir/c4_frame_alloc_speed.cc.o.d"
  "c4_frame_alloc_speed"
  "c4_frame_alloc_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4_frame_alloc_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
