# Empty compiler generated dependencies file for c4_frame_alloc_speed.
# This may be replaced when dependencies are built.
