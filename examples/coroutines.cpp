/**
 * @file
 * Coroutines through the raw XFER primitive (paper §3).
 *
 * The model's point F3: any context may be the destination of any
 * XFER — "a choice between procedure call, coroutine transfer or some
 * other discipline is made by the destination context, not the
 * caller". Here a producer and a consumer exchange control (and one
 * value per transfer, in the argument record) with no stack
 * discipline at all: both frames stay alive the whole time, which a
 * conventional contiguous-stack architecture cannot express.
 *
 * The producer pushes i*i and XFERs to the consumer; the consumer
 * prints it, reads returnContext (LRC) to learn who transferred to
 * it, and XFERs straight back.
 */

#include <iostream>

#include "asm/builder.hh"
#include "machine/machine.hh"
#include "program/loader.hh"

using namespace fpc;

namespace
{

Module
coroModule()
{
    ModuleBuilder b("Coro");
    b.globals(0);

    // producer(n, consumer): sends 1, 4, 9, ... n*n, then halts.
    auto &prod = b.proc("producer", 2, 3);
    auto loop = prod.newLabel();
    prod.loadImm(1).storeLocal(2); // i = 1
    prod.label(loop);
    prod.loadLocal(2).loadLocal(2).op(isa::Op::MUL); // push i*i
    prod.loadLocal(1).op(isa::Op::XF); // XFER[consumer], value rides
    // ...control comes back here with an empty stack...
    prod.loadLocal(2).loadImm(1).op(isa::Op::ADD).storeLocal(2);
    prod.loadLocal(2).loadLocal(0).op(isa::Op::LE).jumpNotZero(loop);
    prod.halt();

    // consumer(): forever { out value; XFER[returnContext] }.
    auto &cons = b.proc("consumer", 0, 1);
    auto again = cons.newLabel();
    cons.label(again);
    cons.op(isa::Op::OUT);            // the transferred value
    cons.op(isa::Op::LRC);            // who sent it?
    cons.op(isa::Op::XF);             // go back
    cons.jump(again);

    return b.build();
}

} // namespace

int
main()
{
    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    loader.add(coroModule());
    const LoadedImage image = loader.load(mem, LinkPlan{});

    for (const Impl impl : {Impl::Mesa, Impl::Banked}) {
        MachineConfig config;
        config.impl = impl;
        Machine machine(mem, image, config);

        // The consumer is a suspended activation — the model's
        // "creation context" made tangible.
        const Word consumer = machine.spawn("Coro", "consumer");
        machine.start("Coro", "producer",
                      std::array<Word, 2>{8, consumer});
        const RunResult result = machine.run();

        std::cout << implName(impl) << " squares:";
        for (const Word v : machine.output())
            std::cout << " " << v;
        std::cout << "\n  [" << stopReasonName(result.reason) << ", "
                  << machine.stats().xferCount[static_cast<unsigned>(
                         XferKind::Coroutine)]
                  << " coroutine XFERs, "
                  << machine.stats().returnStackFlushes
                  << " return-stack flushes]\n";
    }
    return 0;
}
