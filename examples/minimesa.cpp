/**
 * @file
 * Compile a MiniMesa program (the paper's §2 "source" level) and run
 * it under all four implementations and matching linkages — the same
 * source, four positions on the simplicity/space/speed tradeoff of
 * §8.
 */

#include <iostream>

#include "lang/codegen.hh"
#include "machine/machine.hh"
#include "program/loader.hh"
#include "stats/table.hh"

using namespace fpc;

namespace
{

const char *program = R"(
    module Primes;
    var count;

    proc isPrime(n) {
        var d;
        if (n < 2) { return 0; }
        d = 2;
        while (d * d <= n) {
            if (n % d == 0) { return 0; }
            d = d + 1;
        }
        return 1;
    }

    proc main(limit) {
        var i;
        i = 2;
        while (i < limit) {
            if (isPrime(i)) {
                out i;
                count = count + 1;
            }
            i = i + 1;
        }
        return count;
    }
)";

} // namespace

int
main()
{
    const auto modules = lang::compile(program);
    const SystemLayout layout;

    stats::Table table({"impl", "linkage", "primes < 100",
                        "instructions", "cycles", "calls",
                        "refs/call", "fast call+ret"});

    struct Combo
    {
        Impl impl;
        CallLowering lowering;
    };
    for (const Combo combo :
         {Combo{Impl::Simple, CallLowering::Fat},
          Combo{Impl::Mesa, CallLowering::Mesa},
          Combo{Impl::Ifu, CallLowering::Direct},
          Combo{Impl::Banked, CallLowering::Direct}}) {
        Memory mem(layout.memWords);
        Loader loader{layout, SizeClasses::standard()};
        for (const auto &m : modules)
            loader.add(m);
        LinkPlan plan;
        plan.lowering = combo.lowering;
        const LoadedImage image = loader.load(mem, plan);

        MachineConfig config;
        config.impl = combo.impl;
        Machine machine(mem, image, config);
        machine.start("Primes", "main", std::array<Word, 1>{Word{100}});
        const RunResult result = machine.run();
        if (result.reason != StopReason::TopReturn) {
            std::cerr << "run failed: " << result.message << "\n";
            return 1;
        }
        const Word primes = machine.popValue();

        const MachineStats &s = machine.stats();
        double refs_per_call = 0;
        for (const XferKind kind :
             {XferKind::ExtCall, XferKind::LocalCall,
              XferKind::DirectCall, XferKind::FatCall}) {
            const auto &d = s.xferRefs[static_cast<unsigned>(kind)];
            if (d.count())
                refs_per_call += d.mean() * d.count();
        }
        refs_per_call /= std::max<CountT>(1, s.calls());

        table.row(implName(combo.impl),
                  callLoweringName(combo.lowering), primes, s.steps,
                  s.cycles, s.calls(), stats::fixed(refs_per_call, 1),
                  stats::percent(s.fastCallReturnRate()));
    }

    std::cout << "MiniMesa primes under the four implementations "
                 "(same source, same answers):\n\n";
    table.print(std::cout);
    return 0;
}
