/**
 * @file
 * Quickstart: assemble a module, bind it two ways, run it on two
 * machine implementations, and look at what the transfer machinery
 * did.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "asm/builder.hh"
#include "isa/disasm.hh"
#include "machine/machine.hh"
#include "program/loader.hh"

using namespace fpc;

int
main()
{
    // ------------------------------------------------------------------
    // 1. Build a module with the assembler.
    // ------------------------------------------------------------------
    ModuleBuilder b("Demo");
    b.globals(1);

    // gcd(a, b) by Euclid's algorithm.
    auto &gcd = b.proc("gcd", 2, 2);
    auto loop = gcd.newLabel();
    auto done = gcd.newLabel();
    gcd.label(loop);
    gcd.loadLocal(1).jumpZero(done);           // while (b != 0)
    gcd.loadLocal(0).loadLocal(1).op(isa::Op::MOD); // a % b
    gcd.loadLocal(1).storeLocal(0);            // a = b (careful order)
    gcd.storeLocal(1);                         // b = a % b
    gcd.jump(loop);
    gcd.label(done);
    gcd.loadLocal(0).ret();

    // main(x, y) = gcd(x, y), stashing the result in a global.
    auto &entry = b.proc("main", 2, 2);
    entry.loadLocal(0).loadLocal(1).callLocal("gcd");
    entry.storeGlobal(0);
    entry.loadGlobal(0).ret();

    Module module = b.build();

    // ------------------------------------------------------------------
    // 2. Bind and load under a link plan (paper §5 vs §6).
    // ------------------------------------------------------------------
    const SystemLayout layout;
    for (const CallLowering lowering :
         {CallLowering::Mesa, CallLowering::Direct}) {
        Memory mem(layout.memWords);
        Loader loader{layout, SizeClasses::standard()};
        loader.add(module);
        LinkPlan plan;
        plan.lowering = lowering;
        const LoadedImage image = loader.load(mem, plan);

        std::cout << "=== linkage: " << callLoweringName(lowering)
                  << " — image: " << image.codeBytes()
                  << " code bytes, " << image.lvWords()
                  << " LV words ===\n";

        // Disassemble main to show the encoding differences.
        const PlacedModule &pm = image.module("Demo");
        const PlacedProc &pp = pm.procs[module.procIndex("main")];
        std::vector<std::uint8_t> bytes;
        for (unsigned i = 0; i < pp.bodyBytes; ++i) {
            bytes.push_back(mem.peekByte(pp.prologueAddr +
                                         pp.prologueBytes + i));
        }
        for (const auto &line : isa::disassemble(bytes))
            std::cout << "    " << line.offset << ": " << line.text
                      << "\n";

        // --------------------------------------------------------------
        // 3. Run it on the I2 (Mesa) and I4 (banked) machines.
        // --------------------------------------------------------------
        for (const Impl impl : {Impl::Mesa, Impl::Banked}) {
            MachineConfig config;
            config.impl = impl;
            Machine machine(mem, image, config);
            machine.start("Demo", "main",
                          std::array<Word, 2>{1071, 462});
            const RunResult result = machine.run();
            const Word value = machine.popValue();
            std::cout << "  " << implName(impl)
                      << ": gcd(1071, 462) = " << value << "  ["
                      << stopReasonName(result.reason) << ", "
                      << machine.stats().steps << " instructions, "
                      << machine.cycles() << " cycles, "
                      << machine.stats().calls() << " calls]\n";
        }
        std::cout << "\n";
    }
    return 0;
}
