/**
 * @file
 * Engine shootout on a synthetic call-heavy workload: the §8 tradeoff
 * table, live. I1 maximizes simplicity (and pays in space), I2
 * minimizes space (and pays in indirection), I3/I4 maximize speed.
 * The output shows image size, call cost in storage references, and
 * the fraction of calls/returns that ran at unconditional-jump cost.
 */

#include <iostream>

#include "machine/machine.hh"
#include "program/loader.hh"
#include "stats/table.hh"
#include "workload/synthetic.hh"

using namespace fpc;

int
main()
{
    ProgramConfig pc;
    pc.modules = 6;
    pc.procsPerModule = 10;
    pc.callSitesPerProc = 3;
    pc.liveCallsPerProc = 2;
    pc.maxDepth = 10;
    pc.seed = 2026;
    const auto modules = generateProgram(pc);

    const SystemLayout layout;
    stats::Table table({"impl", "linkage", "code bytes", "LV words",
                        "cycles", "mean refs/call", "mean refs/ret",
                        "fast call+ret", "bank events"});

    struct Combo
    {
        Impl impl;
        CallLowering lowering;
        bool shortCalls;
    };
    for (const Combo combo :
         {Combo{Impl::Simple, CallLowering::Fat, false},
          Combo{Impl::Mesa, CallLowering::Mesa, false},
          Combo{Impl::Ifu, CallLowering::Direct, true},
          Combo{Impl::Banked, CallLowering::Direct, true}}) {
        Memory mem(layout.memWords);
        Loader loader{layout, SizeClasses::standard()};
        for (const auto &m : modules)
            loader.add(m);
        LinkPlan plan;
        plan.lowering = combo.lowering;
        plan.shortCalls = combo.shortCalls;
        const LoadedImage image = loader.load(mem, plan);

        MachineConfig config;
        config.impl = combo.impl;
        Machine machine(mem, image, config);
        machine.start(
            generatedEntryModule(), generatedEntryProc(),
            std::array<Word, 1>{static_cast<Word>(pc.maxDepth)});
        const RunResult result = machine.run();
        if (result.reason != StopReason::TopReturn) {
            std::cerr << "run failed on " << implName(combo.impl)
                      << ": " << result.message << "\n";
            return 1;
        }

        const MachineStats &s = machine.stats();
        double call_refs = 0;
        CountT call_count = 0;
        for (const XferKind kind :
             {XferKind::ExtCall, XferKind::LocalCall,
              XferKind::DirectCall, XferKind::FatCall}) {
            const auto &d = s.xferRefs[static_cast<unsigned>(kind)];
            call_refs += d.total();
            call_count += d.count();
        }
        const auto &ret =
            s.xferRefs[static_cast<unsigned>(XferKind::Return)];

        table.row(
            implName(combo.impl), callLoweringName(combo.lowering),
            image.codeBytes(), image.lvWords(), s.cycles,
            stats::fixed(call_refs / std::max<CountT>(1, call_count),
                         2),
            stats::fixed(ret.mean(), 2),
            stats::percent(s.fastCallReturnRate()),
            s.bankOverflows + s.bankUnderflows);
    }

    std::cout
        << "Synthetic workload (" << pc.modules << " modules, "
        << pc.procsPerModule
        << " procs each), identical computation on every engine:\n\n";
    table.print(std::cout);
    std::cout << "\nShape to look for (paper §8): I1 biggest image, "
                 "I2 smallest; refs/transfer fall from I2 to I4; only "
                 "I3/I4 reach jump-speed transfers.\n";
    return 0;
}
