#!/usr/bin/env python3
"""Help-coverage checker: every flag a driver parses must be listed in
its --help output exactly once, and vice versa.

Usage:
    check_help_coverage.py <driver-binary> <driver-source.cc>

The parsed set comes from the source's argument-dispatch patterns
(`arg == "--x"` and `arg.rfind("--x=", 0)`); the documented set from
running `<driver> --help` and collecting the option-table lines (lines
whose first token starts with `--`). The two sets must be equal, and
no flag may be documented twice. Exits 0 on success, 1 with the
difference otherwise. Stdlib only.
"""

import re
import subprocess
import sys

EQ_RE = re.compile(r'arg\s*==\s*"(--[a-z][a-z0-9-]*)"')
RFIND_RE = re.compile(r'arg\.rfind\("(--[a-z][a-z0-9-]*)=?",\s*0\)')
HELP_FLAG_RE = re.compile(r"^\s+(--[a-z][a-z0-9-]*)")


def parsed_flags(source_path):
    with open(source_path, "r", encoding="utf-8") as f:
        src = f.read()
    flags = set(EQ_RE.findall(src))
    flags.update(f.rstrip("=") for f in RFIND_RE.findall(src))
    return flags


def documented_flags(binary):
    proc = subprocess.run([binary, "--help"], capture_output=True,
                          text=True)
    if proc.returncode != 0:
        sys.stderr.write(
            "check_help_coverage: '%s --help' exited %d\n"
            % (binary, proc.returncode))
        sys.exit(1)
    counts = {}
    for line in proc.stdout.splitlines():
        m = HELP_FLAG_RE.match(line)
        if m:
            flag = m.group(1)
            counts[flag] = counts.get(flag, 0) + 1
    return counts


def main(argv):
    if len(argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    binary, source = argv[1], argv[2]

    parsed = parsed_flags(source)
    if not parsed:
        sys.stderr.write(
            "check_help_coverage: no parsed flags found in %s "
            "(dispatch pattern changed?)\n" % source)
        return 1
    documented = documented_flags(binary)

    ok = True
    for flag, n in sorted(documented.items()):
        if n != 1:
            sys.stderr.write(
                "check_help_coverage: %s listed %d times in --help\n"
                % (flag, n))
            ok = False
    undocumented = parsed - set(documented)
    unparsed = set(documented) - parsed
    for flag in sorted(undocumented):
        sys.stderr.write(
            "check_help_coverage: %s is parsed but missing from "
            "--help\n" % flag)
        ok = False
    for flag in sorted(unparsed):
        sys.stderr.write(
            "check_help_coverage: %s is in --help but never parsed\n"
            % flag)
        ok = False
    if not ok:
        return 1
    print("check_help_coverage: OK (%d flags)" % len(parsed))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
