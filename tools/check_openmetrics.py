#!/usr/bin/env python3
"""Strict checker for the OpenMetrics text exposition the drivers emit.

Usage:
    check_openmetrics.py --file <exposition.txt>
    check_openmetrics.py <driver> [driver args...]

In driver mode the driver is run with --openmetrics-out=<tmpfile>
appended and the resulting exposition is validated. The checks follow
the OpenMetrics 1.0 text format:

  * every metric family is introduced by adjacent `# HELP` and
    `# TYPE` lines, declared exactly once;
  * sample lines belong to a declared family — counters sample as
    `<family>_total`, gauges as `<family>`;
  * metric and label names match the allowed charsets, label values
    are correctly quoted/escaped, sample values and the optional
    timestamps parse as numbers;
  * the exposition ends with the mandatory `# EOF` terminator and
    nothing follows it.

Exits 0 when the exposition is valid, 1 with a line-numbered
diagnosis otherwise. Stdlib only.
"""

import os
import re
import subprocess
import sys
import tempfile

METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
HELP_RE = re.compile(r"^# HELP (\S+) (.+)$")
TYPE_RE = re.compile(r"^# TYPE (\S+) (\S+)$")
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)( \S+)?$")
LABELS_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\\\|\\"|\\n)*)"')
ALLOWED_TYPES = {"counter", "gauge", "histogram", "summary",
                 "info", "stateset", "unknown"}


def fail(lineno, line, why):
    sys.stderr.write(
        "check_openmetrics: line %d: %s\n  %s\n" % (lineno, why, line))
    sys.exit(1)


def parse_labels(lineno, line, braced):
    body = braced[1:-1]
    if not body:
        return
    consumed = 0
    for m in LABELS_RE.finditer(body):
        if m.start() != consumed:
            fail(lineno, line, "malformed label set %r" % braced)
        consumed = m.end()
        if consumed < len(body):
            if body[consumed] != ",":
                fail(lineno, line, "labels must be comma-separated")
            consumed += 1
    if consumed != len(body):
        fail(lineno, line, "malformed label set %r" % braced)


def check(text):
    if not text.endswith("# EOF\n"):
        sys.stderr.write(
            "check_openmetrics: exposition must end with '# EOF'\n")
        sys.exit(1)

    families = {}      # name -> type
    last_help = None   # family name from the preceding HELP line
    saw_eof = False
    samples = 0

    for lineno, line in enumerate(text.splitlines(), start=1):
        if saw_eof:
            fail(lineno, line, "content after '# EOF'")
        if line == "# EOF":
            saw_eof = True
            continue
        if not line:
            fail(lineno, line, "blank lines are not allowed")

        if line.startswith("# HELP "):
            m = HELP_RE.match(line)
            if not m:
                fail(lineno, line, "malformed HELP line")
            name = m.group(1)
            if not METRIC_NAME.fullmatch(name):
                fail(lineno, line, "bad metric name %r" % name)
            if name in families:
                fail(lineno, line, "family %r declared twice" % name)
            last_help = name
            continue

        if line.startswith("# TYPE "):
            m = TYPE_RE.match(line)
            if not m:
                fail(lineno, line, "malformed TYPE line")
            name, mtype = m.group(1), m.group(2)
            if name != last_help:
                fail(lineno, line,
                     "TYPE must directly follow its HELP line")
            if mtype not in ALLOWED_TYPES:
                fail(lineno, line, "unknown metric type %r" % mtype)
            families[name] = mtype
            last_help = None
            continue

        if line.startswith("#"):
            fail(lineno, line, "unexpected comment line")

        m = SAMPLE_RE.match(line)
        if not m:
            fail(lineno, line, "malformed sample line")
        name, braced, value, stamp = m.groups()

        family = None
        if name.endswith("_total"):
            base = name[: -len("_total")]
            if families.get(base) == "counter":
                family = base
        if family is None and families.get(name) == "gauge":
            family = name
        if family is None:
            fail(lineno, line,
                 "sample %r has no matching family declaration "
                 "(counters sample as <family>_total)" % name)

        if braced:
            parse_labels(lineno, line, braced)
        try:
            float(value)
        except ValueError:
            fail(lineno, line, "bad sample value %r" % value)
        if stamp is not None:
            try:
                float(stamp.strip())
            except ValueError:
                fail(lineno, line, "bad timestamp %r" % stamp.strip())
        samples += 1

    if not saw_eof:
        sys.stderr.write("check_openmetrics: missing '# EOF'\n")
        sys.exit(1)
    return len(families), samples


def main(argv):
    if len(argv) >= 3 and argv[1] == "--file":
        with open(argv[2], "r", encoding="utf-8") as f:
            text = f.read()
    elif len(argv) >= 2:
        fd, path = tempfile.mkstemp(suffix=".om.txt")
        os.close(fd)
        try:
            cmd = argv[1:] + ["--openmetrics-out=" + path]
            proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
            if proc.returncode != 0:
                sys.stderr.write(
                    "check_openmetrics: driver exited %d\n"
                    % proc.returncode)
                return 1
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
        finally:
            os.unlink(path)
    else:
        sys.stderr.write(__doc__)
        return 2

    nfam, nsamples = check(text)
    print("check_openmetrics: OK (%d families, %d samples)"
          % (nfam, nsamples))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
