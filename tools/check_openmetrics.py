#!/usr/bin/env python3
"""Strict checker for the OpenMetrics text exposition the drivers emit.

Usage:
    check_openmetrics.py [--require-accel] [--require-probes] \\
        --file <exposition.txt>
    check_openmetrics.py [--require-accel] [--require-probes] \\
        <driver> [driver args...]

In driver mode the driver is run with --openmetrics-out=<tmpfile>
appended and the resulting exposition is validated. The checks follow
the OpenMetrics 1.0 text format:

  * every metric family is introduced by adjacent `# HELP` and
    `# TYPE` lines, declared exactly once;
  * sample lines belong to a declared family — counters sample as
    `<family>_total`, gauges as `<family>`, histograms as
    `<family>_bucket` / `<family>_sum` / `<family>_count`;
  * every `_bucket` sample carries an `le` label; within one labeled
    series the bucket counts are monotonically non-decreasing in `le`
    order, the series ends with an `le="+Inf"` bucket, and that bucket
    equals the series' `_count`;
  * metric and label names match the allowed charsets, label values
    are correctly quoted/escaped, sample values and the optional
    timestamps parse as numbers;
  * burn-rate gauges (names ending `_burn_rate`) are finite and
    non-negative;
  * accelerator ratio gauges (names ending `_hit_rate` or
    `_chain_rate`) are finite and within [0, 1];
  * with `--require-accel`, at least one accelerator family (a name
    containing `_accel_`) must be declared — the guard the CI scrape
    smoke uses to catch the accel telemetry silently disappearing;
  * with `--require-probes`, the probe families must be present:
    `fpc_probe_attached` plus at least one per-probe family, every
    `fpc_probe_*` family declared as a gauge (probes detach and
    re-attach, so their exports are not monotone), and every
    `fpc_probe_hits` sample labeled with `id` and `spec`;
  * the exposition ends with the mandatory `# EOF` terminator and
    nothing follows it.

Exits 0 when the exposition is valid, 1 with a line-numbered
diagnosis otherwise. Stdlib only.
"""

import os
import re
import subprocess
import sys
import tempfile

METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
HELP_RE = re.compile(r"^# HELP (\S+) (.+)$")
TYPE_RE = re.compile(r"^# TYPE (\S+) (\S+)$")
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)( \S+)?$")
LABELS_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\\\|\\"|\\n)*)"')
ALLOWED_TYPES = {"counter", "gauge", "histogram", "summary",
                 "info", "stateset", "unknown"}


def fail(lineno, line, why):
    sys.stderr.write(
        "check_openmetrics: line %d: %s\n  %s\n" % (lineno, why, line))
    sys.exit(1)


def parse_labels(lineno, line, braced):
    labels = []
    body = braced[1:-1]
    if not body:
        return labels
    consumed = 0
    for m in LABELS_RE.finditer(body):
        if m.start() != consumed:
            fail(lineno, line, "malformed label set %r" % braced)
        labels.append((m.group(1), m.group(2)))
        consumed = m.end()
        if consumed < len(body):
            if body[consumed] != ",":
                fail(lineno, line, "labels must be comma-separated")
            consumed += 1
    if consumed != len(body):
        fail(lineno, line, "malformed label set %r" % braced)
    return labels


def check(text):
    if not text.endswith("# EOF\n"):
        sys.stderr.write(
            "check_openmetrics: exposition must end with '# EOF'\n")
        sys.exit(1)

    families = {}      # name -> type
    helps = set()      # every family a HELP line introduced
    last_help = None   # family name from the preceding HELP line
    # (family, labels) -> lineno, for fpc_probe_hits label checks
    probe_hits = []
    saw_eof = False
    samples = 0
    # (family, non-le labels) -> [(lineno, line, le, value)]
    buckets = {}
    # (family, labels) -> value, for the _count cross-check
    counts = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if saw_eof:
            fail(lineno, line, "content after '# EOF'")
        if line == "# EOF":
            saw_eof = True
            continue
        if not line:
            fail(lineno, line, "blank lines are not allowed")

        if line.startswith("# HELP "):
            m = HELP_RE.match(line)
            if not m:
                fail(lineno, line, "malformed HELP line")
            name = m.group(1)
            if not METRIC_NAME.fullmatch(name):
                fail(lineno, line, "bad metric name %r" % name)
            if name in helps:
                fail(lineno, line,
                     "duplicate HELP line for family %r" % name)
            helps.add(name)
            last_help = name
            continue

        if line.startswith("# TYPE "):
            m = TYPE_RE.match(line)
            if not m:
                fail(lineno, line, "malformed TYPE line")
            name, mtype = m.group(1), m.group(2)
            if name != last_help:
                fail(lineno, line,
                     "TYPE must directly follow its HELP line")
            if name in families:
                fail(lineno, line,
                     "duplicate TYPE line for family %r" % name)
            if mtype not in ALLOWED_TYPES:
                fail(lineno, line, "unknown metric type %r" % mtype)
            families[name] = mtype
            last_help = None
            continue

        if line.startswith("#"):
            fail(lineno, line, "unexpected comment line")

        m = SAMPLE_RE.match(line)
        if not m:
            fail(lineno, line, "malformed sample line")
        name, braced, value, stamp = m.groups()

        family = None
        suffix = None
        if name.endswith("_total"):
            base = name[: -len("_total")]
            if families.get(base) == "counter":
                family, suffix = base, "_total"
        if family is None:
            for s in ("_bucket", "_sum", "_count"):
                if name.endswith(s):
                    base = name[: -len(s)]
                    if families.get(base) == "histogram":
                        family, suffix = base, s
                        break
        if family is None and families.get(name) == "gauge":
            family = name
        if family is None:
            fail(lineno, line,
                 "sample %r has no matching family declaration "
                 "(counters sample as <family>_total, histograms as "
                 "<family>_bucket/_sum/_count)" % name)

        labels = parse_labels(lineno, line, braced) if braced else []
        try:
            fvalue = float(value)
        except ValueError:
            fail(lineno, line, "bad sample value %r" % value)
        if stamp is not None:
            try:
                float(stamp.strip())
            except ValueError:
                fail(lineno, line, "bad timestamp %r" % stamp.strip())

        if suffix == "_bucket":
            le = [v for k, v in labels if k == "le"]
            if len(le) != 1:
                fail(lineno, line,
                     "histogram bucket needs exactly one 'le' label")
            rest = tuple(sorted(
                (k, v) for k, v in labels if k != "le"))
            buckets.setdefault((family, rest), []).append(
                (lineno, line, le[0], fvalue))
        elif suffix == "_count":
            counts[(family, tuple(sorted(labels)))] = fvalue
        elif family.endswith("_burn_rate"):
            if not (fvalue >= 0 and fvalue != float("inf")):
                fail(lineno, line,
                     "burn-rate gauge must be finite and "
                     "non-negative, got %r" % value)
        elif family.endswith(("_hit_rate", "_chain_rate")):
            if not 0.0 <= fvalue <= 1.0:
                fail(lineno, line,
                     "ratio gauge must be within [0, 1], got %r"
                     % value)
        if family == "fpc_probe_hits":
            probe_hits.append((lineno, line, dict(labels)))
        samples += 1

    if not saw_eof:
        sys.stderr.write("check_openmetrics: missing '# EOF'\n")
        sys.exit(1)

    for (family, rest), series in buckets.items():
        prev_le = None
        prev_count = None
        for lineno, line, le, fvalue in series:
            try:
                fle = float(le.replace("+Inf", "inf"))
            except ValueError:
                fail(lineno, line, "bad 'le' value %r" % le)
            if prev_le is not None and not fle > prev_le:
                fail(lineno, line,
                     "histogram buckets must be in increasing 'le' "
                     "order")
            if prev_count is not None and fvalue < prev_count:
                fail(lineno, line,
                     "histogram bucket counts must be cumulative "
                     "(non-decreasing in 'le' order)")
            prev_le, prev_count = fle, fvalue
        lineno, line, le, fvalue = series[-1]
        if le != "+Inf":
            fail(lineno, line,
                 "histogram series must end with an le=\"+Inf\" "
                 "bucket")
        want = counts.get((family, rest))
        if want is None:
            fail(lineno, line,
                 "histogram series has buckets but no _count sample")
        if fvalue != want:
            fail(lineno, line,
                 "le=\"+Inf\" bucket (%g) must equal _count (%g)"
                 % (fvalue, want))

    for lineno, line, labels in probe_hits:
        for want in ("id", "spec"):
            if want not in labels:
                fail(lineno, line,
                     "fpc_probe_hits sample missing the %r label"
                     % want)
    return families, samples


def main(argv):
    require_accel = False
    require_probes = False
    while len(argv) >= 2 and argv[1] in ("--require-accel",
                                         "--require-probes"):
        if argv[1] == "--require-accel":
            require_accel = True
        else:
            require_probes = True
        argv = argv[:1] + argv[2:]
    if len(argv) >= 3 and argv[1] == "--file":
        with open(argv[2], "r", encoding="utf-8") as f:
            text = f.read()
    elif len(argv) >= 2:
        fd, path = tempfile.mkstemp(suffix=".om.txt")
        os.close(fd)
        try:
            cmd = argv[1:] + ["--openmetrics-out=" + path]
            proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
            if proc.returncode != 0:
                sys.stderr.write(
                    "check_openmetrics: driver exited %d\n"
                    % proc.returncode)
                return 1
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
        finally:
            os.unlink(path)
    else:
        sys.stderr.write(__doc__)
        return 2

    families, nsamples = check(text)
    if require_accel:
        accel = sorted(n for n in families if "_accel_" in n)
        if not accel:
            sys.stderr.write(
                "check_openmetrics: --require-accel: no accelerator "
                "family (*_accel_*) declared\n")
            return 1
        print("check_openmetrics: accel families: %s"
              % ", ".join(accel))
    if require_probes:
        probes = sorted(n for n in families
                        if n.startswith("fpc_probe_"))
        if "fpc_probe_attached" not in families:
            sys.stderr.write(
                "check_openmetrics: --require-probes: the "
                "fpc_probe_attached family is not declared\n")
            return 1
        if len(probes) < 2:
            sys.stderr.write(
                "check_openmetrics: --require-probes: no per-probe "
                "family (fpc_probe_hits/...) declared\n")
            return 1
        bad = [n for n in probes if families[n] != "gauge"]
        if bad:
            sys.stderr.write(
                "check_openmetrics: --require-probes: probe families "
                "must be gauges, got: %s\n" % ", ".join(bad))
            return 1
        print("check_openmetrics: probe families: %s"
              % ", ".join(probes))
    print("check_openmetrics: OK (%d families, %d samples)"
          % (len(families), nsamples))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
