#!/usr/bin/env python3
"""Exercise the drivers' exporter/postmortem error paths.

Every artifact flag pointed at an unwritable target must make the
driver report the failure and exit nonzero — without crashing, and
without losing the run's primary output (program output and --stats
still appear). A --postmortem-dir= that cannot be created is a
warning, not a second failure: the bundle is best-effort diagnostics
for a run that already failed.

Usage: check_error_paths.py <fpcvm> <fpcrun> <programs-dir>
"""

import pathlib
import subprocess
import sys
import tempfile

failures = []


def run(cmd):
    return subprocess.run(
        [str(c) for c in cmd], capture_output=True, text=True, timeout=120
    )


def check(label, ok, detail=""):
    if ok:
        print(f"ok: {label}")
    else:
        failures.append(label)
        print(f"FAIL: {label} {detail}")


def expect_write_error(label, proc, needle="cannot write"):
    crashed = proc.returncode < 0
    check(f"{label}: no crash", not crashed, f"(signal {-proc.returncode})")
    check(f"{label}: exit nonzero", proc.returncode == 1,
          f"(exit {proc.returncode})")
    check(f"{label}: reports the error", needle in proc.stderr,
          f"(stderr: {proc.stderr!r})")


def main():
    if len(sys.argv) != 4:
        print(__doc__)
        return 2
    fpcvm, fpcrun = sys.argv[1], sys.argv[2]
    programs = pathlib.Path(sys.argv[3])
    primes = programs / "primes.mm"
    trap = programs / "trap.mm"

    with tempfile.TemporaryDirectory() as tmp:
        tmpdir = pathlib.Path(tmp)
        blocker = tmpdir / "blocker"
        blocker.write_text("occupied\n")

        # A directory where a file is expected: the stream open fails.
        for flag in ("--metrics-out", "--openmetrics-out", "--stats-json",
                     "--trace-out", "--record-out"):
            p = run([fpcvm, "--stats", f"{flag}={tmpdir}", primes, "10"])
            expect_write_error(f"fpcvm {flag}=<dir>", p)
            check(f"fpcvm {flag}=<dir>: stats preserved",
                  "--- statistics ---" in p.stdout)

        for flag in ("--metrics-out", "--openmetrics-out", "--stats-json",
                     "--trace-out", "--record-out"):
            p = run([fpcrun, "--jobs=2", f"{flag}={tmpdir}", primes, "10"])
            expect_write_error(f"fpcrun {flag}=<dir>", p)

        # A postmortem dir blocked by an existing file: the failing run
        # still reports its own error and exits 1, the bundle failure
        # is only warned about, and nothing crashes.
        p = run([fpcvm, f"--postmortem-dir={blocker}", trap])
        check("fpcvm --postmortem-dir=<file>: no crash", p.returncode >= 0)
        check("fpcvm --postmortem-dir=<file>: exit nonzero",
              p.returncode == 1, f"(exit {p.returncode})")
        check("fpcvm --postmortem-dir=<file>: program error reported",
              "division by zero" in p.stderr, f"(stderr: {p.stderr!r})")
        check("fpcvm --postmortem-dir=<file>: bundle failure warned",
              "cannot create" in p.stderr, f"(stderr: {p.stderr!r})")

        p = run([fpcrun, "--jobs=2", f"--postmortem-dir={blocker}", trap])
        check("fpcrun --postmortem-dir=<file>: no crash", p.returncode >= 0)
        check("fpcrun --postmortem-dir=<file>: exit nonzero",
              p.returncode == 1, f"(exit {p.returncode})")

        # Control: the same flags pointed somewhere writable succeed.
        p = run([fpcvm, f"--metrics-out={tmpdir/'m.json'}",
                 f"--record-out={tmpdir/'r.fpcr'}", primes, "10"])
        check("fpcvm control run succeeds", p.returncode == 0,
              f"(exit {p.returncode}, stderr: {p.stderr!r})")
        check("fpcvm control artifacts written",
              (tmpdir / "m.json").exists() and (tmpdir / "r.fpcr").exists())

    if failures:
        print(f"\n{len(failures)} error-path check(s) failed")
        return 1
    print("\nall error-path checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
