/**
 * @file
 * fpcreplay — deterministic record/replay driver.
 *
 *   fpcreplay record prog.mm 20 --out=run.fpcr      # capture a run
 *   fpcreplay verify run.fpcr                       # re-run + check
 *   fpcreplay verify run.fpcr --accel=off           # accel contract
 *   fpcreplay diverge run.fpcr --engine=I2          # cross-engine
 *
 * record executes a MiniMesa program exactly like fpcvm would and
 * streams an fpc-record-v1 log: the machine configuration, the
 * embedded source, every scheduler decision, periodic FNV-1a state
 * digests, and the final state. verify re-executes from the log,
 * forcing the recorded decisions, and cross-checks every digest; on
 * mismatch it reports the first divergent interval, bisects it at
 * per-XFER granularity, and (with --postmortem-dir=) writes an
 * extended fpc-postmortem-v1 divergence bundle. diverge replays the
 * recording on a second engine and compares architectural digests
 * after every transfer — the paper's engine-equivalence claim as an
 * executable check.
 */

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "lang/codegen.hh"
#include "machine/digest.hh"
#include "machine/machine.hh"
#include "program/loader.hh"
#include "replay/record.hh"
#include "replay/recorder.hh"
#include "replay/replayer.hh"

using namespace fpc;

namespace
{

struct Options
{
    std::string command; ///< record | verify | diverge
    std::string file;    ///< .mm for record, .fpcr otherwise
    std::vector<Word> args;
    std::string out = "run.fpcr";
    Impl impl = Impl::Mesa;
    CallLowering lowering = CallLowering::Mesa;
    bool shortCalls = false;
    unsigned banks = 4;
    std::uint64_t timeslice = 0;
    bool accel = true;
    bool threaded = false;             ///< verify: threaded backend
    std::optional<bool> accelOverride; ///< verify: force accel on/off
    Tick interval = 10000;
    std::string entryModule;
    std::string entryProc = "main";
    std::string postmortemDir;
    std::optional<Impl> engine; ///< diverge: the other engine
};

void
printUsage(std::ostream &os, const char *argv0)
{
    os << "usage: " << argv0
       << " record <file.mm> [int args...] [options]\n"
          "       "
       << argv0
       << " verify <run.fpcr> [options]\n"
          "       "
       << argv0
       << " diverge <run.fpcr> --engine=ENGINE [options]\n"
          "record options:\n"
          "  --out=FILE                      recording path (default "
          "run.fpcr)\n"
          "  --impl=simple|mesa|ifu|banked   machine (default mesa)\n"
          "  --linkage=fat|mesa|direct       binding (default mesa)\n"
          "  --short-calls                   use SHORTDIRECTCALL\n"
          "  --banks=N                       register banks (I4)\n"
          "  --timeslice=N                   preempt every N "
          "instructions\n"
          "  --interval=N                    cycles between state "
          "digests (default 10000)\n"
          "  --entry=Mod.proc                entry point\n"
          "verify options:\n"
          "  --accel=on|off|threaded         force the host backend "
          "(digests must not care)\n"
          "  --postmortem-dir=DIR            write a divergence bundle "
          "on mismatch\n"
          "diverge options:\n"
          "  --engine=I1|I2|I3|I4            the engine to compare "
          "against\n"
          "common options:\n"
          "  --log-level=error|warn|info|debug  stderr verbosity "
          "(default info)\n"
          "  --help                          show this help\n";
}

[[noreturn]] void
usage(const char *argv0)
{
    printUsage(std::cerr, argv0);
    std::exit(2);
}

Impl
parseEngine(const std::string &v, const char *argv0)
{
    if (v == "I1" || v == "i1" || v == "simple")
        return Impl::Simple;
    if (v == "I2" || v == "i2" || v == "mesa")
        return Impl::Mesa;
    if (v == "I3" || v == "i3" || v == "ifu")
        return Impl::Ifu;
    if (v == "I4" || v == "i4" || v == "banked")
        return Impl::Banked;
    usage(argv0);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const std::string &prefix) {
            return arg.substr(prefix.size());
        };
        if (arg.rfind("--out=", 0) == 0) {
            opt.out = value("--out=");
        } else if (arg.rfind("--impl=", 0) == 0) {
            opt.impl = parseEngine(value("--impl="), argv[0]);
        } else if (arg.rfind("--linkage=", 0) == 0) {
            opt.lowering =
                replay::parseLoweringToken(value("--linkage="));
        } else if (arg == "--short-calls") {
            opt.shortCalls = true;
        } else if (arg.rfind("--banks=", 0) == 0) {
            opt.banks = std::stoul(value("--banks="));
        } else if (arg.rfind("--timeslice=", 0) == 0) {
            opt.timeslice = std::stoull(value("--timeslice="));
        } else if (arg.rfind("--interval=", 0) == 0) {
            opt.interval = std::stoull(value("--interval="));
        } else if (arg.rfind("--entry=", 0) == 0) {
            const std::string v = value("--entry=");
            const auto dot = v.find('.');
            if (dot == std::string::npos)
                usage(argv[0]);
            opt.entryModule = v.substr(0, dot);
            opt.entryProc = v.substr(dot + 1);
        } else if (arg.rfind("--accel=", 0) == 0) {
            const std::string v = value("--accel=");
            if (v == "on") {
                opt.accel = true;
            } else if (v == "off") {
                opt.accel = false;
            } else if (v == "threaded") {
                if (!Machine::threadedSupported()) {
                    std::cerr << argv[0]
                              << ": --accel=threaded is not supported "
                                 "by this build (needs the computed-"
                                 "goto extension)\n";
                    std::exit(2);
                }
                opt.accel = true;
                opt.threaded = true;
            } else {
                usage(argv[0]);
            }
            opt.accelOverride = opt.accel;
        } else if (arg.rfind("--postmortem-dir=", 0) == 0) {
            opt.postmortemDir = value("--postmortem-dir=");
        } else if (arg.rfind("--engine=", 0) == 0) {
            opt.engine = parseEngine(value("--engine="), argv[0]);
        } else if (arg.rfind("--log-level=", 0) == 0) {
            LogLevel level;
            if (!parseLogLevel(value("--log-level="), level))
                usage(argv[0]);
            setLogLevel(level);
        } else if (arg == "--help") {
            printUsage(std::cout, argv[0]);
            std::exit(0);
        } else if (arg.rfind("--", 0) == 0) {
            usage(argv[0]);
        } else if (opt.command.empty()) {
            opt.command = arg;
        } else if (opt.file.empty()) {
            opt.file = arg;
        } else {
            opt.args.push_back(
                static_cast<Word>(std::stol(arg) & 0xFFFF));
        }
    }
    if (opt.command.empty() || opt.file.empty())
        usage(argv[0]);
    if (opt.command != "record" && opt.command != "verify" &&
        opt.command != "diverge")
        usage(argv[0]);
    if (opt.command == "diverge" && !opt.engine)
        usage(argv[0]);
    return opt;
}

int
doRecord(const Options &opt)
{
    std::ifstream in(opt.file);
    if (!in) {
        error("fpcreplay: cannot open {}", opt.file);
        return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string source = buffer.str();

    const auto modules = lang::compile(source);
    std::string entry = opt.entryModule;
    if (entry.empty()) {
        entry = modules.front().name;
        for (const auto &m : modules)
            if (m.name == "Main")
                entry = "Main";
    }

    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    for (const auto &m : modules)
        loader.add(m);
    LinkPlan plan;
    plan.lowering = opt.lowering;
    plan.shortCalls = opt.shortCalls;
    const LoadedImage image = loader.load(mem, plan);

    replay::RecordLog log;
    log.impl = opt.impl;
    log.lowering = opt.lowering;
    log.shortCalls = opt.shortCalls;
    log.banks = opt.banks;
    log.timeslice = opt.timeslice;
    log.accel = opt.accel;
    log.interval = opt.interval;
    log.workers = 1;
    log.stride = 1;
    log.imageHash = replay::imageHash(mem, image);
    log.entryModule = entry;
    log.entryProc = opt.entryProc;
    log.args = opt.args;
    log.source = source;

    MachineConfig config;
    config.impl = opt.impl;
    config.numBanks = opt.banks;
    config.timesliceSteps = opt.timeslice;
    config.accel.enabled = opt.accel;
    Machine machine(mem, image, config);

    replay::Recorder recorder;
    recorder.beginJob(0, 0);
    machine.setSampler(&recorder, opt.interval);
    if (opt.timeslice > 0) {
        machine.setScheduler(recorder.wrapPolicy(
            [](Machine &m) { return m.currentFrameContext(); }));
    }

    machine.start(entry, opt.entryProc, opt.args);
    recorder.sample(machine);
    const RunResult result = machine.run();
    recorder.finish(machine, result);
    log.jobs.push_back(recorder.takeJob());

    std::ofstream os(opt.out);
    if (!os) {
        error("fpcreplay: cannot write {}", opt.out);
        return 1;
    }
    replay::writeRecord(os, log);
    const replay::JobRecord &job = log.jobs.front();
    std::cout << "recorded " << opt.file << " -> " << opt.out << " ("
              << stopReasonName(result.reason) << ", "
              << job.final.steps << " steps, " << job.samples.size()
              << " digests, " << job.decisions.size()
              << " decisions)\n";
    return 0;
}

replay::RecordLog
loadRecord(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("fpcreplay: cannot open {}", path);
    return replay::parseRecord(in);
}

int
doVerify(const Options &opt)
{
    replay::Replayer replayer(loadRecord(opt.file));

    replay::VerifyOptions vo;
    vo.accelOverride = opt.accelOverride;
    vo.threaded = opt.threaded;
    vo.divergenceDir = opt.postmortemDir;
    const replay::VerifyResult result = replayer.verify(vo);

    if (result.ok) {
        std::cout << "verify OK: " << result.jobsChecked << " job(s), "
                  << result.samplesChecked << " digest(s) matched on "
                  << implName(replayer.log().impl) << "\n";
        return 0;
    }
    if (result.divergence) {
        const replay::Divergence &d = *result.divergence;
        error("fpcreplay: divergence: {}", d.detail);
        if (!d.bundlePath.empty())
            inform("divergence bundle written to {}", d.bundlePath);
    }
    if (result.decisionOverrun)
        error("fpcreplay: scheduler decisions did not match the "
              "recording");
    return 1;
}

int
doDiverge(const Options &opt)
{
    replay::Replayer replayer(loadRecord(opt.file));
    const Impl base = replayer.log().impl;
    const replay::DivergeResult result = replayer.diverge(*opt.engine);

    if (result.equivalent) {
        std::cout << "engines equivalent: " << implName(base) << " vs "
                  << implName(*opt.engine) << ", "
                  << result.xfersCompared
                  << " transfers, identical architectural digests\n";
        return 0;
    }
    if (result.countMismatch) {
        std::cout << "engines diverge: transfer counts differ after "
                  << result.xfersCompared << " matching transfers\n";
    } else {
        std::cout << "engines diverge at transfer "
                  << result.xferIndex << " (step " << result.step
                  << "): " << implName(base) << " "
                  << replay::digestHex(result.baseDigest) << " vs "
                  << implName(*opt.engine) << " "
                  << replay::digestHex(result.otherDigest) << "\n";
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
try {
    const Options opt = parseArgs(argc, argv);
    if (opt.command == "record")
        return doRecord(opt);
    if (opt.command == "verify")
        return doVerify(opt);
    return doDiverge(opt);
} catch (const std::exception &err) {
    error("fpcreplay: {}", err.what());
    return 1;
}
