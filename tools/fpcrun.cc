/**
 * @file
 * fpcrun — the FPC batch driver: many jobs, many workers.
 *
 * Where fpcvm runs one program and exits, fpcrun feeds a pool of OS
 * worker threads (each owning an independent simulated Machine) from
 * a shared job queue and reports throughput plus the merged machine
 * statistics:
 *
 *   fpcrun --workers=4 --jobs=64 prog.mm 200       # 64 runs of prog
 *   fpcrun --workers=8 --jobs=32 --impl=banked --linkage=direct \
 *          --timeslice=1000 --stats prog.mm
 *   fpcrun --workers=4 --jobs=16 --synthetic --depth=9
 *
 * With --synthetic, each job runs a generated multi-module program
 * (seeded per job, so the pool sees varied call graphs) instead of a
 * compiled file. With --timeslice=N, every worker's machine preempts
 * its program every N instructions through the full ProcSwitch XFER
 * path, so throughput includes the paper's §7.1 fallback costs.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "lang/codegen.hh"
#include "obs/json.hh"
#include "obs/probes.hh"
#include "replay/record.hh"
#include "sched/runtime.hh"
#include "serve/drain.hh"
#include "stats/table.hh"
#include "workload/synthetic.hh"

using namespace fpc;

namespace
{

struct Options
{
    std::string file;
    std::vector<Word> args;
    unsigned workers = 4;
    unsigned jobs = 16;
    Impl impl = Impl::Mesa;
    CallLowering lowering = CallLowering::Mesa;
    bool shortCalls = false;
    bool stats = false;
    bool accel = true;
    bool threaded = false;
    bool accelStats = false;
    bool synthetic = false;
    unsigned depth = 8; ///< synthetic entry argument
    std::uint64_t timeslice = 0;
    unsigned banks = 4;
    std::string entryModule;
    std::string entryProc = "main";
    std::string traceOut;      ///< multi-worker Chrome trace path
    std::size_t traceCapacity = obs::Tracer::defaultCapacity;
    bool profile = false;
    unsigned profileTop = 20;
    std::string profileFolded; ///< folded-stacks path (flamegraph.pl)
    bool profileSampled = false;
    Tick sampleInterval = 9973; ///< cycles between boundary samples
    bool telemetrySampled = false;
    std::string statsJson;     ///< "fpc-stats-v1" document path
    std::string metricsOut;    ///< "fpc-metrics-v1" time-series path
    Tick metricsInterval = obs::Telemetry::defaultInterval;
    std::size_t metricsCapacity = obs::Telemetry::defaultCapacity;
    std::string openmetricsOut; ///< OpenMetrics exposition path
    std::string postmortemDir;  ///< per-failed-job bundle directory
    std::string recordOut;      ///< "fpc-record-v1" recording path
    std::string spansOut;       ///< "fpc-spans-v1" span log path
    std::vector<std::string> probeSpecs; ///< --probe= (repeatable)
    std::string probeOut;       ///< "fpc-probes-v1" document path
};

void
printUsage(std::ostream &os, const char *argv0)
{
    os << "usage: " << argv0
       << " [options] <file.mm> [int args...]\n"
          "       " << argv0 << " [options] --synthetic\n"
          "  --workers=N                     worker threads (default 4)\n"
          "  --jobs=M                        jobs to run (default 16)\n"
          "  --impl=simple|mesa|ifu|banked   machine (default mesa)\n"
          "  --linkage=fat|mesa|direct       binding (default mesa)\n"
          "  --short-calls                   use SHORTDIRECTCALL\n"
          "  --banks=N                       register banks (I4)\n"
          "  --timeslice=N                   preempt every N instructions\n"
          "  --synthetic                     generate one program per job\n"
          "  --depth=N                       synthetic recursion depth\n"
          "  --entry=Mod.proc                entry point\n"
          "  --stats                         dump merged statistics\n"
          "  --accel=on|off|threaded         host backend: burst, off, "
          "or threaded-code\n"
          "                                  superblocks (simulated "
          "numbers are identical\n"
          "                                  in every mode; default "
          "on)\n"
          "  --accel-stats                   dump merged host cache "
          "counters\n"
          "  --trace-out=FILE                write a Chrome/Perfetto "
          "trace, one track per worker\n"
          "  --trace-capacity=N              per-worker trace ring size "
          "(default "
       << obs::Tracer::defaultCapacity
       << ")\n"
          "  --profile                       merged per-procedure "
          "profile\n"
          "  --profile-top=N                 profile rows to print "
          "(default 20)\n"
          "  --profile-folded=FILE           write folded stacks "
          "(flamegraph.pl)\n"
          "  --profile-sampled               sampled (accel-safe) "
          "profile: boundary\n"
          "                                  samples instead of exact "
          "XFER observation,\n"
          "                                  so --accel fast paths "
          "keep running\n"
          "  --sample-interval=N             cycles between boundary "
          "samples (default\n"
          "                                  9973; prime to avoid "
          "loop aliasing)\n"
          "  --telemetry-mode=exact|sampled  exact: cycle-precise "
          "sampler (forces the\n"
          "                                  eager loop; default). "
          "sampled: bounded-slop\n"
          "                                  boundary samples, accel "
          "fast paths kept\n"
          "  --stats-json=FILE               write merged statistics "
          "as JSON\n"
          "  --metrics-out=FILE              write a fpc-metrics-v1 "
          "series per worker\n"
          "  --metrics-interval=N            cycles between samples "
          "(default "
       << obs::Telemetry::defaultInterval
       << ")\n"
          "  --metrics-capacity=N            per-worker metrics ring "
          "size (default "
       << obs::Telemetry::defaultCapacity
       << ")\n"
          "  --openmetrics-out=FILE          write the series as "
          "OpenMetrics text\n"
          "  --postmortem-dir=DIR            write a bundle per failed "
          "job\n"
          "  --record-out=FILE               write an fpc-record-v1 "
          "recording of every job\n"
          "  --spans-out=FILE                write per-job host-time "
          "spans as fpc-spans-v1\n"
          "  --probe=SPEC                    attach a dynamic probe "
          "(repeatable); e.g.\n"
          "                                  'entry:Mod.proc"
          "{depth<=4} -> quantize(cycles)'\n"
          "                                  zero simulated cost; "
          "accel backends deopt\n"
          "                                  only the probed "
          "procedures\n"
          "  --probe-out=FILE                write probe aggregations "
          "as fpc-probes-v1\n"
          "  --log-level=error|warn|info|debug  stderr verbosity "
          "(default info)\n"
          "  --help                          show this help\n";
}

[[noreturn]] void
usage(const char *argv0)
{
    printUsage(std::cerr, argv0);
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const std::string &prefix) {
            return arg.substr(prefix.size());
        };
        if (arg.rfind("--workers=", 0) == 0) {
            opt.workers = std::stoul(value("--workers="));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opt.jobs = std::stoul(value("--jobs="));
        } else if (arg.rfind("--impl=", 0) == 0) {
            const std::string v = value("--impl=");
            if (v == "simple")
                opt.impl = Impl::Simple;
            else if (v == "mesa")
                opt.impl = Impl::Mesa;
            else if (v == "ifu")
                opt.impl = Impl::Ifu;
            else if (v == "banked")
                opt.impl = Impl::Banked;
            else
                usage(argv[0]);
        } else if (arg.rfind("--linkage=", 0) == 0) {
            const std::string v = value("--linkage=");
            if (v == "fat")
                opt.lowering = CallLowering::Fat;
            else if (v == "mesa")
                opt.lowering = CallLowering::Mesa;
            else if (v == "direct")
                opt.lowering = CallLowering::Direct;
            else
                usage(argv[0]);
        } else if (arg == "--short-calls") {
            opt.shortCalls = true;
        } else if (arg.rfind("--banks=", 0) == 0) {
            opt.banks = std::stoul(value("--banks="));
        } else if (arg.rfind("--timeslice=", 0) == 0) {
            opt.timeslice = std::stoull(value("--timeslice="));
        } else if (arg == "--synthetic") {
            opt.synthetic = true;
        } else if (arg.rfind("--depth=", 0) == 0) {
            opt.depth = std::stoul(value("--depth="));
        } else if (arg.rfind("--entry=", 0) == 0) {
            const std::string v = value("--entry=");
            const auto dot = v.find('.');
            if (dot == std::string::npos)
                usage(argv[0]);
            opt.entryModule = v.substr(0, dot);
            opt.entryProc = v.substr(dot + 1);
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (arg.rfind("--accel=", 0) == 0) {
            const std::string v = value("--accel=");
            if (v == "on") {
                opt.accel = true;
            } else if (v == "off") {
                opt.accel = false;
            } else if (v == "threaded") {
                if (!Machine::threadedSupported()) {
                    std::cerr << argv[0]
                              << ": --accel=threaded is not supported "
                                 "by this build (needs the computed-"
                                 "goto extension)\n";
                    std::exit(2);
                }
                opt.accel = true;
                opt.threaded = true;
            } else {
                usage(argv[0]);
            }
        } else if (arg == "--accel-stats") {
            opt.accelStats = true;
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            opt.traceOut = value("--trace-out=");
        } else if (arg.rfind("--trace-capacity=", 0) == 0) {
            opt.traceCapacity = std::stoull(value("--trace-capacity="));
        } else if (arg == "--profile") {
            opt.profile = true;
        } else if (arg.rfind("--profile-top=", 0) == 0) {
            opt.profile = true;
            opt.profileTop = std::stoul(value("--profile-top="));
        } else if (arg.rfind("--profile-folded=", 0) == 0) {
            opt.profileFolded = value("--profile-folded=");
        } else if (arg == "--profile-sampled") {
            opt.profileSampled = true;
        } else if (arg.rfind("--sample-interval=", 0) == 0) {
            opt.sampleInterval =
                std::stoull(value("--sample-interval="));
        } else if (arg.rfind("--telemetry-mode=", 0) == 0) {
            const std::string v = value("--telemetry-mode=");
            if (v == "exact")
                opt.telemetrySampled = false;
            else if (v == "sampled")
                opt.telemetrySampled = true;
            else
                usage(argv[0]);
        } else if (arg.rfind("--stats-json=", 0) == 0) {
            opt.statsJson = value("--stats-json=");
        } else if (arg.rfind("--metrics-out=", 0) == 0) {
            opt.metricsOut = value("--metrics-out=");
        } else if (arg.rfind("--metrics-interval=", 0) == 0) {
            opt.metricsInterval =
                std::stoull(value("--metrics-interval="));
        } else if (arg.rfind("--metrics-capacity=", 0) == 0) {
            opt.metricsCapacity =
                std::stoull(value("--metrics-capacity="));
        } else if (arg.rfind("--openmetrics-out=", 0) == 0) {
            opt.openmetricsOut = value("--openmetrics-out=");
        } else if (arg.rfind("--postmortem-dir=", 0) == 0) {
            opt.postmortemDir = value("--postmortem-dir=");
        } else if (arg.rfind("--record-out=", 0) == 0) {
            opt.recordOut = value("--record-out=");
        } else if (arg.rfind("--spans-out=", 0) == 0) {
            opt.spansOut = value("--spans-out=");
        } else if (arg.rfind("--probe=", 0) == 0) {
            opt.probeSpecs.push_back(value("--probe="));
        } else if (arg.rfind("--probe-out=", 0) == 0) {
            opt.probeOut = value("--probe-out=");
        } else if (arg.rfind("--log-level=", 0) == 0) {
            LogLevel level;
            if (!parseLogLevel(value("--log-level="), level))
                usage(argv[0]);
            setLogLevel(level);
        } else if (arg == "--help") {
            printUsage(std::cout, argv[0]);
            std::exit(0);
        } else if (arg.rfind("--", 0) == 0) {
            usage(argv[0]);
        } else if (opt.file.empty()) {
            opt.file = arg;
        } else {
            opt.args.push_back(
                static_cast<Word>(std::stol(arg) & 0xFFFF));
        }
    }
    if (opt.file.empty() && !opt.synthetic)
        usage(argv[0]);
    // A folded path alone keeps its historical meaning (exact
    // profile); with --profile-sampled it exports the sampled one.
    if (!opt.profileFolded.empty() && !opt.profileSampled)
        opt.profile = true;
    if (opt.telemetrySampled && !opt.recordOut.empty()) {
        std::cerr << argv[0]
                  << ": --telemetry-mode=sampled cannot be combined "
                     "with --record-out (replay requires the exact "
                     "sampler chain)\n";
        std::exit(2);
    }
    return opt;
}

void
dumpMergedStats(const sched::Runtime &runtime)
{
    const MachineStats &s = runtime.machineStats();
    std::cout << "\n--- merged statistics (" << runtime.workers()
              << " workers) ---\n"
              << "instructions: " << s.steps
              << "   simulated cycles: " << s.cycles << "\n";

    stats::Table table({"transfer", "count", "fast", "mean refs",
                        "mean cycles"});
    for (unsigned k = 0; k < MachineStats::numXferKinds; ++k) {
        if (s.xferCount[k] == 0)
            continue;
        table.row(xferKindName(static_cast<XferKind>(k)),
                  s.xferCount[k], s.xferFast[k],
                  stats::fixed(s.xferRefs[k].mean(), 2),
                  stats::fixed(s.xferCycles[k].mean(), 1));
    }
    table.print(std::cout);
    std::cout << "jump-speed calls+returns: "
              << stats::percent(s.fastCallReturnRate()) << "\n";
    if (s.preemptions > 0)
        std::cout << "preemptions: " << s.preemptions << "\n";
    runtime.stats().dump(std::cout);
}

} // namespace

int
main(int argc, char **argv)
try {
    const Options opt = parseArgs(argc, argv);

    sched::RuntimeConfig rc;
    rc.workers = opt.workers;
    rc.machine.impl = opt.impl;
    rc.machine.numBanks = opt.banks;
    rc.machine.timesliceSteps = opt.timeslice;
    rc.machine.accel.enabled = opt.accel;
    rc.machine.accel.threaded = opt.threaded;
    rc.plan.lowering = opt.lowering;
    rc.plan.shortCalls = opt.shortCalls;
    rc.trace = !opt.traceOut.empty();
    rc.traceCapacity = opt.traceCapacity;
    rc.profile = opt.profile;
    rc.profileSampled = opt.profileSampled;
    rc.sampleInterval = opt.sampleInterval;
    rc.metrics =
        !opt.metricsOut.empty() || !opt.openmetricsOut.empty();
    rc.metricsInterval = opt.metricsInterval;
    rc.metricsCapacity = opt.metricsCapacity;
    rc.metricsSampled = opt.telemetrySampled;
    rc.postmortemDir = opt.postmortemDir;
    rc.record = !opt.recordOut.empty();
    rc.driver = "fpcrun";

    // Dynamic probes ride the selective-deopt path: only superblocks
    // covering a probed procedure fall back to the eager loop, so
    // probes are deliberately absent from the forcesEager warning
    // below.
    obs::ProbeRegistry probeRegistry;
    if (!opt.probeSpecs.empty()) {
        std::string perr;
        if (!obs::attachProbeSpecs(probeRegistry, opt.probeSpecs,
                                   perr)) {
            error("fpcrun: {}", perr);
            return 2;
        }
        rc.probes = &probeRegistry;
    }

    // Exact observation forces every worker's eager loop: say so
    // once, up front, rather than letting an accelerated run
    // silently lose its speedup.
    const bool forcesEager =
        rc.trace || rc.profile || rc.record ||
        !rc.postmortemDir.empty() || (rc.metrics && !rc.metricsSampled);
    if (opt.accel && forcesEager) {
        warn("fpcrun: exact observation (--profile/--trace-out/"
             "--record-out/--postmortem-dir/exact metrics) forces the "
             "eager loop; --accel={} keeps only its XFER caches. Use "
             "--profile-sampled / --telemetry-mode=sampled to keep "
             "the fast path",
             opt.threaded ? "threaded" : "on");
    }
    // Batch spans: the runtime synthesizes request ⊃ queued ⊃ execute
    // trees per job (host time only — simulated numbers untouched).
    std::unique_ptr<obs::SpanCollector> spans;
    if (!opt.spansOut.empty()) {
        spans = std::make_unique<obs::SpanCollector>();
        rc.spans = spans.get();
    }
    if (rc.record && opt.synthetic)
        fatal("--record-out= needs a compiled program; --synthetic "
              "jobs have no source to embed");
    // Graceful shutdown: SIGINT/SIGTERM let running jobs finish,
    // cancel the rest, and still emit every requested export below.
    serve::DrainSignal drain;
    rc.stopFlag = &drain.flag();
    sched::Runtime runtime(rc);

    std::string source;
    std::string entry = opt.entryModule;
    if (opt.synthetic) {
        for (unsigned j = 0; j < opt.jobs; ++j) {
            ProgramConfig pc;
            pc.seed = j + 1;
            auto modules =
                std::make_shared<const std::vector<Module>>(
                    generateProgram(pc));
            runtime.submit({modules, generatedEntryModule(),
                            generatedEntryProc(),
                            {static_cast<Word>(opt.depth)}});
        }
    } else {
        std::ifstream in(opt.file);
        if (!in) {
            error("fpcrun: cannot open {}", opt.file);
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        source = buffer.str();
        auto modules = std::make_shared<const std::vector<Module>>(
            lang::compile(source));

        if (entry.empty()) {
            entry = modules->front().name;
            for (const auto &m : *modules)
                if (m.name == "Main")
                    entry = "Main";
        }
        for (unsigned j = 0; j < opt.jobs; ++j)
            runtime.submit({modules, entry, opt.entryProc, opt.args});
    }

    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<sched::JobResult> results = runtime.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();

    unsigned ok = 0, failed = 0, canceled = 0;
    for (const sched::JobResult &r : results) {
        if (r.ok) {
            ++ok;
        } else if (drain.requested() &&
                   r.error == "canceled: drain requested") {
            ++canceled;
        } else {
            ++failed;
            error("fpcrun: job {} failed ({}): {}", r.id,
                  stopReasonName(r.reason), r.error);
        }
    }
    if (drain.requested())
        inform("fpcrun: drained after signal; {} job(s) canceled, "
               "exports still written",
               canceled);

    std::cout << ok << "/" << results.size() << " jobs ok, "
              << runtime.workers() << " workers, " << stats::fixed(secs, 3)
              << " s wall, "
              << stats::fixed(results.size() / std::max(secs, 1e-9), 1)
              << " jobs/s\n";
    if (!results.empty() && results.front().ok && !opt.synthetic)
        std::cout << "=> " << static_cast<SWord>(results.front().value)
                  << "\n";

    if (opt.stats)
        dumpMergedStats(runtime);
    if (opt.accelStats) {
        const AccelStats &a = runtime.accelStats();
        std::cout << "\n--- host acceleration (merged) ---\n";
        if (!opt.accel) {
            std::cout << "disabled (--accel=off)\n";
        } else {
            std::cout << "icache: " << a.icacheHits << " hits, "
                      << a.icacheMisses << " misses ("
                      << stats::percent(a.icacheHitRate()) << ")\n"
                      << "link cache: " << a.linkHits() << " hits, "
                      << a.linkMisses() << " misses ("
                      << stats::percent(a.linkHitRate()) << ")\n"
                      << "flushes: " << a.codeFlushes << " code, "
                      << a.tableFlushes << " link\n";
            if (a.probeSites != 0 || a.probeEagerSteps != 0)
                std::cout << "probes: " << a.probeSites
                          << " armed sites, " << a.probeDeoptBlocks
                          << " deopt blocks, " << a.probeEagerSteps
                          << " eager steps\n";
        }
    }

    if (!opt.traceOut.empty()) {
        std::ofstream out(opt.traceOut);
        if (!out) {
            error("fpcrun: cannot write {}", opt.traceOut);
            return 1;
        }
        runtime.writeTrace(out);
    }
    if (opt.profile) {
        const obs::ProfileData &data = runtime.profile();
        std::cout << "\n--- merged profile (top " << opt.profileTop
                  << " by exclusive cycles) ---\n";
        data.topTable(opt.profileTop).print(std::cout);
        if (!opt.profileFolded.empty()) {
            std::ofstream out(opt.profileFolded);
            if (!out) {
                error("fpcrun: cannot write {}", opt.profileFolded);
                return 1;
            }
            data.writeFolded(out);
        }
    }
    if (opt.profileSampled) {
        const obs::SampledProfile &data = runtime.sampledProfile();
        std::cout << "\n--- merged sampled profile (top "
                  << opt.profileTop << " by samples, interval "
                  << opt.sampleInterval << " cycles) ---\n";
        data.topTable(opt.profileTop).print(std::cout);
        if (!opt.profileFolded.empty() && !opt.profile) {
            std::ofstream out(opt.profileFolded);
            if (!out) {
                error("fpcrun: cannot write {}", opt.profileFolded);
                return 1;
            }
            data.writeFolded(out);
        }
    }
    if (!opt.statsJson.empty()) {
        std::ofstream out(opt.statsJson);
        if (!out) {
            error("fpcrun: cannot write {}", opt.statsJson);
            return 1;
        }
        obs::StatsExport exp;
        exp.driver = "fpcrun";
        exp.impl = implName(rc.machine.impl);
        exp.workers = runtime.workers();
        exp.machine = &runtime.machineStats();
        exp.groups.push_back(&runtime.stats());
        // Host counters only on request: the default document must be
        // byte-identical with acceleration on or off.
        if (opt.accelStats)
            exp.accel = &runtime.accelStats();
        obs::writeStatsJson(out, exp);
    }
    if (!opt.metricsOut.empty()) {
        std::ofstream out(opt.metricsOut);
        if (!out) {
            error("fpcrun: cannot write {}", opt.metricsOut);
            return 1;
        }
        runtime.writeMetricsJson(out);
    }
    if (!opt.openmetricsOut.empty()) {
        std::ofstream out(opt.openmetricsOut);
        if (!out) {
            error("fpcrun: cannot write {}", opt.openmetricsOut);
            return 1;
        }
        runtime.writeOpenMetrics(out);
    }
    if (spans) {
        const auto faults = obs::checkSpans(*spans);
        if (!faults.empty())
            warn("fpcrun: span checker found {} fault(s)",
                 faults.size());
        std::ofstream out(opt.spansOut);
        if (!out) {
            error("fpcrun: cannot write {}", opt.spansOut);
            return 1;
        }
        obs::writeSpansLog(out, "fpcrun", *spans);
    }
    if (!opt.probeOut.empty()) {
        std::ofstream out(opt.probeOut);
        if (!out) {
            error("fpcrun: cannot write {}", opt.probeOut);
            return 1;
        }
        probeRegistry.writeJson(out, "fpcrun");
    }
    if (!opt.recordOut.empty()) {
        replay::RecordLog log;
        log.impl = opt.impl;
        log.lowering = opt.lowering;
        log.shortCalls = opt.shortCalls;
        log.banks = opt.banks;
        log.timeslice = opt.timeslice;
        log.accel = opt.accel;
        log.interval = opt.metricsInterval;
        log.workers = runtime.workers();
        log.stride = runtime.stride();
        log.imageHash = runtime.recordedImageHash();
        log.entryModule = entry;
        log.entryProc = opt.entryProc;
        log.args = opt.args;
        log.source = source;
        log.jobs = runtime.jobRecords();
        std::ofstream out(opt.recordOut);
        if (!out) {
            error("fpcrun: cannot write {}", opt.recordOut);
            return 1;
        }
        replay::writeRecord(out, log);
        inform("fpcrun: recorded {} job(s) to {}", log.jobs.size(),
               opt.recordOut);
    }
    return failed == 0 ? 0 : 1;
} catch (const std::exception &err) {
    error("fpcrun: {}", err.what());
    return 1;
}
