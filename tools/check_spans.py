#!/usr/bin/env python3
"""Validator for the fpc-spans-v1 span log (and the matching Perfetto
JSON trace).

Usage:
    check_spans.py --file <spans.txt> [--trace <trace.json>]
                   [--slack-ns N]
    check_spans.py <driver> [driver args...]

In driver mode the driver is run with --spans-out=<tmpfile> appended
and the resulting log is validated. The checks mirror the C++
checkSpans() well-bracketing rules:

  * the log parses: magic line, header counters, tenant table, span
    and fault records, `eof` terminator;
  * every span's end >= start; phases lie within their request span's
    bounds, do not overlap each other, and appear in canonical order
    (admission, queued, dispatch, execute, reply);
  * when the ring dropped nothing, a complete ok request that was
    admitted carries its phases as an exact partition of the request
    interval: phase durations sum to the request duration within
    --slack-ns (default 0 — the writers share boundary timestamps);
  * the log reports zero bracketing faults;
  * with --trace, the Perfetto export parses as JSON and every "X"
    slice has non-negative ts/dur.

Truncated logs (dropped > 0) skip the completeness checks: the ring
legally evicts oldest spans, so torn trees are not faults. Exits 0
when valid, 1 with a diagnosis otherwise. Stdlib only.
"""

import json
import os
import subprocess
import sys
import tempfile

PHASE_ORDER = ["admission", "queued", "dispatch", "execute", "reply"]
KINDS = set(PHASE_ORDER) | {"request"}


def fail(why):
    sys.stderr.write("check_spans: %s\n" % why)
    sys.exit(1)


def parse_log(text):
    lines = text.splitlines()
    if not lines or lines[0] != "fpc-spans-v1":
        fail("missing fpc-spans-v1 magic line")
    header = {}
    spans = []
    faults = []
    tenants = {}
    saw_eof = False
    for lineno, line in enumerate(lines[1:], start=2):
        if saw_eof:
            fail("line %d: content after 'eof'" % lineno)
        parts = line.split()
        if not parts:
            fail("line %d: blank line" % lineno)
        tag = parts[0]
        if tag == "eof":
            saw_eof = True
        elif tag in ("driver",):
            header[tag] = parts[1] if len(parts) > 1 else ""
        elif tag in ("capacity", "recorded", "dropped", "faults"):
            if len(parts) != 2 or not parts[1].isdigit():
                fail("line %d: malformed '%s' line" % (lineno, tag))
            header[tag] = int(parts[1])
        elif tag == "tenant":
            if len(parts) < 3 or not parts[1].isdigit():
                fail("line %d: malformed tenant line" % lineno)
            tenants[int(parts[1])] = " ".join(parts[2:])
        elif tag == "span":
            if len(parts) != 10:
                fail("line %d: span record needs 9 fields" % lineno)
            (_, sid, trace_id, req_id, kind, track, tenant, start,
             end, ok) = parts
            if kind not in KINDS:
                fail("line %d: unknown span kind %r" % (lineno, kind))
            if ":" not in track:
                fail("line %d: malformed track %r" % (lineno, track))
            if ok not in ("ok", "err"):
                fail("line %d: bad ok flag %r" % (lineno, ok))
            spans.append({
                "id": int(sid), "traceId": int(trace_id),
                "reqId": int(req_id), "kind": kind, "track": track,
                "tenant": tenant, "start": int(start),
                "end": int(end), "ok": ok == "ok",
                "lineno": lineno,
            })
        elif tag == "fault":
            faults.append(line)
        else:
            fail("line %d: unknown record %r" % (lineno, tag))
    if not saw_eof:
        fail("missing 'eof' terminator")
    for key in ("capacity", "recorded", "dropped", "faults"):
        if key not in header:
            fail("missing '%s' header line" % key)
    if header["faults"] != len(faults):
        fail("faults header says %d, %d fault records present"
             % (header["faults"], len(faults)))
    return header, spans, faults, tenants


def check_trees(header, spans, slack_ns):
    truncated = header["dropped"] > 0
    trees = {}
    for s in spans:
        if s["end"] < s["start"]:
            fail("line %d: span ends before it starts" % s["lineno"])
        trees.setdefault(s["id"], []).append(s)

    complete = 0
    for sid, tree in sorted(trees.items()):
        requests = [s for s in tree if s["kind"] == "request"]
        phases = [s for s in tree if s["kind"] != "request"]
        if len(requests) > 1:
            fail("request %d has %d request spans"
                 % (sid, len(requests)))
        if not requests:
            if truncated:
                continue  # the request span was legally evicted
            fail("request %d has phases but no request span" % sid)
        req = requests[0]
        phases.sort(key=lambda s: s["start"])
        prev_end = None
        prev_rank = -1
        for s in phases:
            if s["start"] < req["start"] or s["end"] > req["end"]:
                fail("request %d: %s span outside the request bounds"
                     % (sid, s["kind"]))
            if prev_end is not None and s["start"] < prev_end:
                fail("request %d: %s overlaps the previous phase"
                     % (sid, s["kind"]))
            rank = PHASE_ORDER.index(s["kind"])
            if rank <= prev_rank:
                fail("request %d: phases out of canonical order"
                     % sid)
            prev_end, prev_rank = s["end"], rank

        # Completeness: only checkable on untruncated logs, and only
        # promised for ok requests that were admitted (an ok
        # admission phase is present).
        admitted_ok = any(s["kind"] == "admission" and s["ok"]
                          for s in phases)
        if truncated or not req["ok"] or not admitted_ok:
            continue
        if len(phases) != len(PHASE_ORDER):
            fail("request %d: admitted ok request has %d phases, "
                 "want %d" % (sid, len(phases), len(PHASE_ORDER)))
        total = sum(s["end"] - s["start"] for s in phases)
        want = req["end"] - req["start"]
        if abs(total - want) > slack_ns:
            fail("request %d: phase durations sum to %d ns, request "
                 "span is %d ns (slack %d)"
                 % (sid, total, want, slack_ns))
        complete += 1
    return len(trees), complete


def check_trace(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("trace: no traceEvents array")
    slices = 0
    for e in events:
        if e.get("ph") == "X":
            if e.get("ts", -1) < 0 or e.get("dur", -1) < 0:
                fail("trace: X slice with negative ts/dur: %r" % e)
            slices += 1
    return slices


def main(argv):
    slack_ns = 0
    trace_path = None
    args = argv[1:]
    rest = []
    i = 0
    while i < len(args):
        if args[i] == "--slack-ns" and i + 1 < len(args):
            slack_ns = int(args[i + 1])
            i += 2
        elif args[i].startswith("--slack-ns="):
            slack_ns = int(args[i].split("=", 1)[1])
            i += 1
        elif args[i] == "--trace" and i + 1 < len(args):
            trace_path = args[i + 1]
            i += 2
        elif args[i].startswith("--trace="):
            trace_path = args[i].split("=", 1)[1]
            i += 1
        else:
            rest.append(args[i])
            i += 1

    if len(rest) >= 2 and rest[0] == "--file":
        with open(rest[1], "r", encoding="utf-8") as f:
            text = f.read()
    elif rest:
        fd, path = tempfile.mkstemp(suffix=".spans.txt")
        os.close(fd)
        try:
            cmd = rest + ["--spans-out=" + path]
            proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
            if proc.returncode != 0:
                sys.stderr.write(
                    "check_spans: driver exited %d\n" % proc.returncode)
                return 1
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
        finally:
            os.unlink(path)
    else:
        sys.stderr.write(__doc__)
        return 2

    header, spans, faults, _ = parse_log(text)
    if faults:
        fail("log reports %d bracketing fault(s):\n  %s"
             % (len(faults), "\n  ".join(faults)))
    trees, complete = check_trees(header, spans, slack_ns)
    msg = ("check_spans: OK (%d spans, %d request trees, %d complete, "
           "%d dropped)" % (len(spans), trees, complete,
                            header["dropped"]))
    if trace_path:
        slices = check_trace(trace_path)
        msg += "; trace OK (%d slices)" % slices
    print(msg)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
