#!/usr/bin/env python3
"""Compare two fpc-bench-v1 JSON documents metric by metric.

Usage: bench_diff.py <baseline.json> <candidate.json> [--threshold=0.25]
       [--lower-is-better=prefix,prefix,...]
       [--informational=prefix,prefix,...]

Prints a delta table over the shared `metrics` maps and exits 1 when
any metric regressed by more than the threshold (relative). Metrics
are assumed higher-is-better unless their name starts with one of the
lower-is-better prefixes (defaults cover wall-clock and miss/drop
counters). Metrics whose name starts with an informational prefix
(default `attr_` — host-time latency attribution) are printed but
never gate: they are wall-clock measurements of a shared runner, not
simulated invariants. Metrics present on only one side are reported
but never fail the comparison — benches grow columns over time. Numeric cells
of shared `tables` are diffed too, but informationally only: table
rows mix host-noisy and simulated numbers, so only the curated
`metrics` map gates.

Shared-runner numbers are noisy: the default threshold is generous,
and CI treats this as a smoke check on the committed baselines, not a
microbenchmark gate.
"""

import json
import sys

DEFAULT_THRESHOLD = 0.25
DEFAULT_LOWER_IS_BETTER = ("wall_", "ms_", "misses_", "dropped_", "slow_")
DEFAULT_INFORMATIONAL = ("attr_",)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "fpc-bench-v1":
        sys.exit(f"bench_diff: {path}: not an fpc-bench-v1 document "
                 f"(schema {doc.get('schema')!r})")
    return doc


def parse_cell(cell):
    """A table cell as a float, or None when it isn't numeric."""
    text = str(cell).strip().rstrip("%")
    try:
        return float(text)
    except ValueError:
        return None


def diff_tables(base_doc, cand_doc):
    base_tables = base_doc.get("tables", {})
    cand_tables = cand_doc.get("tables", {})
    for name in sorted(set(base_tables) & set(cand_tables)):
        bt, ct = base_tables[name], cand_tables[name]
        if bt.get("headers") != ct.get("headers"):
            print(f"table {name}: headers differ, skipped")
            continue
        headers = bt["headers"]

        def keyed(rows):
            # Rows are identified by their label cells; the first
            # column is always a label even when it parses as a
            # number (e.g. a worker count).
            out = {}
            for row in rows:
                key = tuple(str(c) for i, c in enumerate(row)
                            if i == 0 or parse_cell(c) is None)
                out[key] = row
            return out

        base_rows, cand_rows = keyed(bt["rows"]), keyed(ct["rows"])
        print(f"table {name}:")
        for key in base_rows:
            if key not in cand_rows:
                print(f"  {' / '.join(key)}: only in baseline")
                continue
            brow, crow = base_rows[key], cand_rows[key]
            deltas = []
            for col, b, c in zip(headers, brow, crow):
                bv, cv = parse_cell(b), parse_cell(c)
                if bv is None or cv is None or bv == cv:
                    continue
                rel = (cv - bv) / abs(bv) if bv else float("inf")
                deltas.append(f"{col} {bv:g}->{cv:g} ({rel:+.1%})")
            label = " / ".join(key) or "(row)"
            print(f"  {label}: " +
                  ("; ".join(deltas) if deltas else "unchanged"))
        for key in cand_rows:
            if key not in base_rows:
                print(f"  {' / '.join(key)}: only in candidate")


def main(argv):
    paths = []
    threshold = DEFAULT_THRESHOLD
    lower_prefixes = DEFAULT_LOWER_IS_BETTER
    info_prefixes = DEFAULT_INFORMATIONAL
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg.startswith("--lower-is-better="):
            lower_prefixes = tuple(
                p for p in arg.split("=", 1)[1].split(",") if p)
        elif arg.startswith("--informational="):
            info_prefixes = tuple(
                p for p in arg.split("=", 1)[1].split(",") if p)
        elif arg.startswith("--"):
            print(__doc__)
            return 2
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__)
        return 2

    base_doc, cand_doc = load(paths[0]), load(paths[1])
    if base_doc.get("bench") != cand_doc.get("bench"):
        print(f"bench_diff: comparing different benches: "
              f"{base_doc.get('bench')!r} vs {cand_doc.get('bench')!r}")
    base, cand = base_doc.get("metrics", {}), cand_doc.get("metrics", {})

    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    regressions = []

    width = max((len(n) for n in shared), default=10)
    print(f"bench: {cand_doc.get('bench')}  "
          f"({len(shared)} shared metrics, threshold {threshold:.0%})")
    for name in shared:
        b, c = float(base[name]), float(cand[name])
        lower_better = name.startswith(lower_prefixes)
        informational = name.startswith(info_prefixes)
        if b == 0:
            rel = 0.0 if c == 0 else float("inf")
        else:
            rel = (c - b) / abs(b)
        # A regression is movement in the bad direction past threshold.
        bad = rel > threshold if lower_better else rel < -threshold
        if informational:
            marker = " (informational)"
        else:
            marker = " REGRESSED" if bad else ""
            if bad:
                regressions.append(name)
        print(f"  {name:<{width}}  {b:>14.4f} -> {c:>14.4f}  "
              f"{rel:+8.1%}{marker}")
    for name in only_base:
        print(f"  {name}: only in baseline")
    for name in only_cand:
        print(f"  {name}: only in candidate")

    diff_tables(base_doc, cand_doc)

    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed past "
              f"{threshold:.0%}: {', '.join(regressions)}")
        return 1
    print("\nno regressions past threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
