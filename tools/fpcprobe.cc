/**
 * @file
 * fpcprobe — live probe management on a running fpcserve.
 *
 * Speaks the fpc-serve-v1 PROBE op: attach a probe spec, detach one
 * by id, or read every attached probe's aggregations as an
 * fpc-probes-v1 document. Attach/detach take effect from the next
 * dispatched job; jobs already executing keep their snapshot and are
 * never interrupted, so probing a production daemon is safe:
 *
 *   fpcprobe --port=7533 attach 'entry:Primes.isPrime -> quantize(cycles)'
 *   fpcprobe --port=7533 read
 *   fpcprobe --port=7533 detach 1
 *
 * attach prints the assigned probe id (the handle detach wants) on
 * stdout; read prints the JSON document. Malformed specs are parsed
 * server-side: the server answers BAD_REQUEST with the parser's
 * diagnosis, which lands on stderr here.
 */

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "serve/client.hh"

using namespace fpc;

namespace
{

struct Options
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::string command; ///< attach | detach | read
    std::string operand; ///< attach: spec; detach: id
};

void
printUsage(std::ostream &os, const char *argv0)
{
    os << "usage: " << argv0
       << " [options] attach '<spec>'\n"
          "       " << argv0 << " [options] detach <id>\n"
          "       " << argv0 << " [options] read\n"
          "  --host=ADDR   server address (default 127.0.0.1)\n"
          "  --port=N      server port (required)\n"
          "  --help        show this help\n"
          "probe specs: '<site>{<predicate>,...} -> <action>', e.g.\n"
          "  'entry:Primes.isPrime -> count'\n"
          "  'entry:Sort.* {depth<=8} -> quantize(cycles)'\n"
          "  'xfer:return {tenant==gold} -> sum(refs)'\n";
}

[[noreturn]] void
usage(const char *argv0)
{
    printUsage(std::cerr, argv0);
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const std::string &prefix) {
            return arg.substr(prefix.size());
        };
        if (arg.rfind("--host=", 0) == 0) {
            opt.host = value("--host=");
        } else if (arg.rfind("--port=", 0) == 0) {
            opt.port = static_cast<std::uint16_t>(
                std::stoul(value("--port=")));
        } else if (arg == "--help") {
            printUsage(std::cout, argv[0]);
            std::exit(0);
        } else if (arg.rfind("--", 0) == 0) {
            usage(argv[0]);
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.empty() || opt.port == 0)
        usage(argv[0]);
    opt.command = positional[0];
    if (opt.command == "attach" || opt.command == "detach") {
        if (positional.size() != 2)
            usage(argv[0]);
        opt.operand = positional[1];
    } else if (opt.command == "read") {
        if (positional.size() != 1)
            usage(argv[0]);
    } else {
        usage(argv[0]);
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
try {
    const Options opt = parseArgs(argc, argv);

    serve::Client client;
    std::string err;
    if (!client.connect(opt.host, opt.port, err)) {
        error("fpcprobe: {}", err);
        return 1;
    }

    if (opt.command == "attach") {
        serve::Reply reply;
        if (!client.probeAttach(opt.operand, reply)) {
            error("fpcprobe: connection lost during attach");
            return 1;
        }
        if (reply.status != serve::Status::ProbeText) {
            error("fpcprobe: attach refused: {}", reply.error);
            return 1;
        }
        std::cout << reply.probeId << "\n";
    } else if (opt.command == "detach") {
        std::uint32_t id = 0;
        try {
            id = static_cast<std::uint32_t>(std::stoul(opt.operand));
        } catch (const std::exception &) {
            usage(argv[0]);
        }
        serve::Reply reply;
        if (!client.probeDetach(id, reply)) {
            error("fpcprobe: connection lost during detach");
            return 1;
        }
        if (reply.status != serve::Status::ProbeText) {
            error("fpcprobe: detach refused: {}", reply.error);
            return 1;
        }
    } else {
        std::string text;
        if (!client.probeRead(text)) {
            error("fpcprobe: read failed");
            return 1;
        }
        std::cout << text;
    }
    return 0;
} catch (const std::exception &err) {
    error("fpcprobe: {}", err.what());
    return 1;
}
