/**
 * @file
 * fpcserve — the FPC serving daemon: a long-lived, multi-tenant job
 * server over the pooled runtime.
 *
 * Where fpcrun drains a fixed batch and exits, fpcserve listens on a
 * TCP port for fpc-serve-v1 frames, runs submitted MiniMesa jobs on a
 * persistent worker pool with per-worker reusable machine contexts,
 * and applies admission control (bounded queues, per-tenant cycle
 * quotas) with deficit-round-robin fair dispatch across tenants:
 *
 *   fpcserve --port=7533 --workers=4
 *   fpcserve --port=7533 --tenant=gold:4:64 --tenant=bronze:1:8:200000 \
 *            --queue-capacity=32 --preload=primes=examples/programs/primes.mm
 *
 * SIGINT/SIGTERM drain gracefully: stop accepting, answer late
 * submits with DRAINING, finish everything admitted, flush the
 * telemetry exports, exit 0. A SCRAPE request (or --openmetrics-out
 * at drain) exposes queue depth, per-tenant gauges and job-latency
 * percentiles.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <poll.h>

#include "common/logging.hh"
#include "lang/codegen.hh"
#include "serve/drain.hh"
#include "serve/server.hh"
#include "stats/table.hh"

using namespace fpc;

namespace
{

struct Options
{
    serve::ServerConfig server;
    std::vector<std::pair<std::string, std::string>> preloads;
    std::vector<std::pair<std::string, double>> slos;
    std::string metricsOut;
    std::string openmetricsOut;
    std::string spansOut;
    std::string traceOut;
    std::string probeOut;
};

void
printUsage(std::ostream &os, const char *argv0)
{
    os << "usage: " << argv0
       << " [options]\n"
          "  --host=ADDR                     listen address (default "
          "127.0.0.1)\n"
          "  --port=N                        listen port (default 0 = "
          "ephemeral, printed at start)\n"
          "  --workers=N                     pool worker threads "
          "(default 2)\n"
          "  --impl=simple|mesa|ifu|banked   machine (default mesa)\n"
          "  --linkage=fat|mesa|direct       binding (default mesa)\n"
          "  --short-calls                   use SHORTDIRECTCALL\n"
          "  --banks=N                       register banks (I4)\n"
          "  --timeslice=N                   preempt every N "
          "instructions\n"
          "  --accel=on|off|threaded         host backend: burst, off, "
          "or threaded-code\n"
          "                                  superblocks (default on)\n"
          "  --queue-capacity=N              admitted-job bound across "
          "tenants (default 256)\n"
          "  --max-inflight=N                jobs on the pool at once "
          "(default = workers)\n"
          "  --tenant=NAME:W[:Q[:C]]         tenant weight W, max "
          "queued Q, cycles/window C\n"
          "  --slo=NAME:MS                   tenant latency SLO "
          "target in ms (admission to reply)\n"
          "  --default-weight=W              unconfigured-tenant DRR "
          "weight (default 1)\n"
          "  --default-max-queued=N          unconfigured-tenant queue "
          "bound (default 64)\n"
          "  --default-cycles-per-window=N   unconfigured-tenant cycle "
          "quota (default 0 = off)\n"
          "  --quota-window-ms=N             cycle-quota window "
          "(default 1000)\n"
          "  --preload=NAME=FILE.mm          compile FILE.mm and serve "
          "it as program NAME\n"
          "  --postmortem-dir=DIR            write a bundle per failed "
          "job\n"
          "  --metrics-out=FILE              write per-worker "
          "fpc-metrics-v1 series at drain\n"
          "  --metrics-interval=N            cycles between samples "
          "(default "
       << obs::Telemetry::defaultInterval
       << ")\n"
          "  --telemetry-mode=exact|sampled  exact: cycle-precise "
          "sampler (forces the\n"
          "                                  eager loop on every "
          "worker; default).\n"
          "                                  sampled: bounded-slop "
          "boundary samples,\n"
          "                                  accel fast paths kept\n"
          "  --openmetrics-out=FILE          write the series as "
          "OpenMetrics text at drain\n"
          "  --spans-out=FILE                write request spans as "
          "fpc-spans-v1 at drain\n"
          "  --trace-out=FILE                write spans (plus "
          "per-worker XFER tracks) as Perfetto JSON at drain\n"
          "  --spans-capacity=N              span ring size, "
          "drop-oldest (default "
       << obs::SpanCollector::defaultCapacity
       << ")\n"
          "  --probe=SPEC                    attach a dynamic probe at "
          "start (repeatable);\n"
          "                                  clients can attach/detach "
          "more live via the\n"
          "                                  PROBE op; results in "
          "SCRAPE as fpc_probe_*\n"
          "  --probe-out=FILE                write probe aggregations "
          "as fpc-probes-v1 at drain\n"
          "  --log-level=error|warn|info|debug  stderr verbosity "
          "(default info)\n"
          "  --help                          show this help\n";
}

[[noreturn]] void
usage(const char *argv0)
{
    printUsage(std::cerr, argv0);
    std::exit(2);
}

/** Parse "NAME:W[:Q[:C]]" into a (name, TenantConfig) pair. */
bool
parseTenant(const std::string &spec, std::string &name,
            serve::TenantConfig &config)
{
    std::vector<std::string> parts;
    std::stringstream ss(spec);
    std::string part;
    while (std::getline(ss, part, ':'))
        parts.push_back(part);
    if (parts.size() < 2 || parts.size() > 4 || parts[0].empty())
        return false;
    try {
        name = parts[0];
        config.weight = std::stod(parts[1]);
        if (parts.size() >= 3)
            config.maxQueued = std::stoull(parts[2]);
        if (parts.size() >= 4)
            config.cyclesPerWindow = std::stoull(parts[3]);
    } catch (const std::exception &) {
        return false;
    }
    return config.weight > 0;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    serve::ServerConfig &sc = opt.server;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const std::string &prefix) {
            return arg.substr(prefix.size());
        };
        if (arg.rfind("--host=", 0) == 0) {
            sc.host = value("--host=");
        } else if (arg.rfind("--port=", 0) == 0) {
            sc.port =
                static_cast<std::uint16_t>(std::stoul(value("--port=")));
        } else if (arg.rfind("--workers=", 0) == 0) {
            sc.workers = std::stoul(value("--workers="));
        } else if (arg.rfind("--impl=", 0) == 0) {
            const std::string v = value("--impl=");
            if (v == "simple")
                sc.machine.impl = Impl::Simple;
            else if (v == "mesa")
                sc.machine.impl = Impl::Mesa;
            else if (v == "ifu")
                sc.machine.impl = Impl::Ifu;
            else if (v == "banked")
                sc.machine.impl = Impl::Banked;
            else
                usage(argv[0]);
        } else if (arg.rfind("--linkage=", 0) == 0) {
            const std::string v = value("--linkage=");
            if (v == "fat")
                sc.plan.lowering = CallLowering::Fat;
            else if (v == "mesa")
                sc.plan.lowering = CallLowering::Mesa;
            else if (v == "direct")
                sc.plan.lowering = CallLowering::Direct;
            else
                usage(argv[0]);
        } else if (arg == "--short-calls") {
            sc.plan.shortCalls = true;
        } else if (arg.rfind("--banks=", 0) == 0) {
            sc.machine.numBanks = std::stoul(value("--banks="));
        } else if (arg.rfind("--timeslice=", 0) == 0) {
            sc.machine.timesliceSteps =
                std::stoull(value("--timeslice="));
        } else if (arg.rfind("--accel=", 0) == 0) {
            const std::string v = value("--accel=");
            if (v == "on") {
                sc.machine.accel.enabled = true;
            } else if (v == "off") {
                sc.machine.accel.enabled = false;
            } else if (v == "threaded") {
                if (!Machine::threadedSupported()) {
                    std::cerr << argv[0]
                              << ": --accel=threaded is not supported "
                                 "by this build (needs the computed-"
                                 "goto extension)\n";
                    std::exit(2);
                }
                sc.machine.accel.enabled = true;
                sc.machine.accel.threaded = true;
            } else {
                usage(argv[0]);
            }
        } else if (arg.rfind("--queue-capacity=", 0) == 0) {
            sc.queueCapacity =
                std::stoull(value("--queue-capacity="));
        } else if (arg.rfind("--max-inflight=", 0) == 0) {
            sc.maxInFlight = std::stoul(value("--max-inflight="));
        } else if (arg.rfind("--tenant=", 0) == 0) {
            std::string name;
            serve::TenantConfig config;
            if (!parseTenant(value("--tenant="), name, config))
                usage(argv[0]);
            sc.tenants[name] = config;
        } else if (arg.rfind("--default-weight=", 0) == 0) {
            sc.defaultTenant.weight =
                std::stod(value("--default-weight="));
        } else if (arg.rfind("--default-max-queued=", 0) == 0) {
            sc.defaultTenant.maxQueued =
                std::stoull(value("--default-max-queued="));
        } else if (arg.rfind("--default-cycles-per-window=", 0) == 0) {
            sc.defaultTenant.cyclesPerWindow =
                std::stoull(value("--default-cycles-per-window="));
        } else if (arg.rfind("--quota-window-ms=", 0) == 0) {
            sc.quotaWindowMs =
                std::stoull(value("--quota-window-ms="));
        } else if (arg.rfind("--preload=", 0) == 0) {
            const std::string v = value("--preload=");
            const auto eq = v.find('=');
            if (eq == std::string::npos || eq == 0)
                usage(argv[0]);
            opt.preloads.emplace_back(v.substr(0, eq),
                                      v.substr(eq + 1));
        } else if (arg.rfind("--postmortem-dir=", 0) == 0) {
            sc.postmortemDir = value("--postmortem-dir=");
        } else if (arg.rfind("--metrics-out=", 0) == 0) {
            opt.metricsOut = value("--metrics-out=");
        } else if (arg.rfind("--metrics-interval=", 0) == 0) {
            sc.metricsInterval =
                std::stoull(value("--metrics-interval="));
        } else if (arg.rfind("--telemetry-mode=", 0) == 0) {
            const std::string v = value("--telemetry-mode=");
            if (v == "exact")
                sc.metricsSampled = false;
            else if (v == "sampled")
                sc.metricsSampled = true;
            else
                usage(argv[0]);
        } else if (arg.rfind("--openmetrics-out=", 0) == 0) {
            opt.openmetricsOut = value("--openmetrics-out=");
        } else if (arg.rfind("--spans-out=", 0) == 0) {
            opt.spansOut = value("--spans-out=");
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            opt.traceOut = value("--trace-out=");
        } else if (arg.rfind("--spans-capacity=", 0) == 0) {
            sc.spansCapacity =
                std::stoull(value("--spans-capacity="));
        } else if (arg.rfind("--probe=", 0) == 0) {
            sc.probeSpecs.push_back(value("--probe="));
        } else if (arg.rfind("--probe-out=", 0) == 0) {
            opt.probeOut = value("--probe-out=");
        } else if (arg.rfind("--slo=", 0) == 0) {
            const std::string v = value("--slo=");
            const auto colon = v.rfind(':');
            if (colon == std::string::npos || colon == 0)
                usage(argv[0]);
            try {
                opt.slos.emplace_back(
                    v.substr(0, colon),
                    std::stod(v.substr(colon + 1)));
            } catch (const std::exception &) {
                usage(argv[0]);
            }
            if (opt.slos.back().second <= 0)
                usage(argv[0]);
        } else if (arg.rfind("--log-level=", 0) == 0) {
            LogLevel level;
            if (!parseLogLevel(value("--log-level="), level))
                usage(argv[0]);
            setLogLevel(level);
        } else if (arg == "--help") {
            printUsage(std::cout, argv[0]);
            std::exit(0);
        } else {
            usage(argv[0]);
        }
    }
    sc.metrics = !opt.metricsOut.empty() || !opt.openmetricsOut.empty();
    // Applied after the loop so --slo composes with --tenant in
    // either order (--tenant=NAME:... replaces the whole config).
    for (const auto &[name, ms] : opt.slos) {
        if (sc.tenants.find(name) == sc.tenants.end())
            sc.tenants[name] = sc.defaultTenant;
        sc.tenants[name].sloMs = ms;
    }
    sc.spans = !opt.spansOut.empty() || !opt.traceOut.empty();
    sc.trace = !opt.traceOut.empty();
    // Exact observation forces every worker's eager loop: say so
    // once, up front, rather than letting an accelerated server
    // silently lose its speedup. (Spans are host-time only and do
    // not force anything.)
    const bool forcesEager =
        sc.trace || !sc.postmortemDir.empty() ||
        (sc.metrics && !sc.metricsSampled);
    if (sc.machine.accel.enabled && forcesEager) {
        warn("fpcserve: exact observation (--trace-out/"
             "--postmortem-dir/exact metrics) forces the eager loop; "
             "--accel={} keeps only its XFER caches. Use "
             "--telemetry-mode=sampled to keep the fast path",
             sc.machine.accel.threaded ? "threaded" : "on");
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
try {
    const Options opt = parseArgs(argc, argv);

    serve::Server server(opt.server);
    for (const auto &[name, file] : opt.preloads) {
        std::ifstream in(file);
        if (!in) {
            error("fpcserve: cannot open {}", file);
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        server.addProgram(
            name, std::make_shared<const std::vector<Module>>(
                      lang::compile(buffer.str())));
        inform("fpcserve: preloaded program '{}' from {}", name, file);
    }

    // Install the drain handler before the listener opens: a signal
    // racing startup still shuts down cleanly.
    serve::DrainSignal drain;
    server.start();
    inform("fpcserve: listening on {}:{} ({} workers, {})",
           opt.server.host, server.port(), opt.server.workers,
           implName(opt.server.machine.impl));

    // Everything else happens on the server's threads; the main
    // thread just waits for the drain signal.
    while (!drain.requested()) {
        pollfd pfd = {drain.fd(), POLLIN, 0};
        ::poll(&pfd, 1, -1);
    }

    inform("fpcserve: drain requested; finishing admitted jobs");
    server.stop();

    const stats::Histogram &lat = server.latencyHistogram();
    std::cout << "fpcserve: drained after " << server.jobsCompleted()
              << " job(s), " << server.jobsRejected()
              << " rejected, " << server.connectionsAccepted()
              << " connection(s); latency p50 "
              << stats::fixed(lat.p50(), 2) << " ms, p99 "
              << stats::fixed(lat.p99(), 2) << " ms\n";

    if (!opt.metricsOut.empty()) {
        std::ofstream out(opt.metricsOut);
        if (!out) {
            error("fpcserve: cannot write {}", opt.metricsOut);
            return 1;
        }
        server.writeMetricsJson(out);
    }
    if (!opt.openmetricsOut.empty()) {
        std::ofstream out(opt.openmetricsOut);
        if (!out) {
            error("fpcserve: cannot write {}", opt.openmetricsOut);
            return 1;
        }
        server.writeOpenMetrics(out);
    }
    if (!opt.spansOut.empty()) {
        std::ofstream out(opt.spansOut);
        if (!out) {
            error("fpcserve: cannot write {}", opt.spansOut);
            return 1;
        }
        server.writeSpansLog(out);
    }
    if (!opt.traceOut.empty()) {
        std::ofstream out(opt.traceOut);
        if (!out) {
            error("fpcserve: cannot write {}", opt.traceOut);
            return 1;
        }
        server.writeSpansTrace(out);
    }
    if (!opt.probeOut.empty()) {
        std::ofstream out(opt.probeOut);
        if (!out) {
            error("fpcserve: cannot write {}", opt.probeOut);
            return 1;
        }
        server.probes().writeJson(out, "fpcserve");
    }
    if (!server.spanFaults().empty())
        warn("fpcserve: span checker found {} fault(s)",
             server.spanFaults().size());
    return 0;
} catch (const std::exception &err) {
    error("fpcserve: {}", err.what());
    return 1;
}
