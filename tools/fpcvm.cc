/**
 * @file
 * fpcvm — the FPC virtual machine driver.
 *
 * Compiles a MiniMesa source file and runs it on the simulated
 * processor:
 *
 *   fpcvm prog.mm                          # I2/Mesa defaults
 *   fpcvm --impl=banked --linkage=direct --short-calls prog.mm 20 5
 *   fpcvm --stats --disasm prog.mm
 *   fpcvm --trace-out=t.json --profile --stats-json=s.json prog.mm
 *
 * Positional arguments after the file are passed to <entry>(...) as
 * 16-bit integers; the entry point is Main.main or, if there is no
 * module named Main, the first module's "main".
 */

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "isa/disasm.hh"
#include "lang/codegen.hh"
#include "machine/machine.hh"
#include "obs/fanout.hh"
#include "obs/json.hh"
#include "obs/postmortem.hh"
#include "obs/probes.hh"
#include "obs/profile.hh"
#include "obs/sampled_profile.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "program/loader.hh"
#include "replay/record.hh"
#include "replay/recorder.hh"
#include "stats/table.hh"

using namespace fpc;

namespace
{

struct Options
{
    std::string file;
    std::vector<Word> args;
    Impl impl = Impl::Mesa;
    CallLowering lowering = CallLowering::Mesa;
    bool shortCalls = false;
    bool stats = false;
    bool disasm = false;
    bool accel = true;
    bool threaded = false;
    bool accelStats = false;
    unsigned banks = 4;
    std::uint64_t timeslice = 0;
    std::string entryModule;
    std::string entryProc = "main";
    std::string traceOut;      ///< Chrome trace JSON path
    std::size_t traceCapacity = obs::Tracer::defaultCapacity;
    bool profile = false;
    unsigned profileTop = 20;
    std::string profileFolded; ///< folded-stacks path (flamegraph.pl)
    bool profileSampled = false;
    Tick sampleInterval = 9973; ///< cycles between boundary samples
    bool telemetrySampled = false;
    std::string statsJson;     ///< "fpc-stats-v1" document path
    std::string metricsOut;    ///< "fpc-metrics-v1" time-series path
    Tick metricsInterval = obs::Telemetry::defaultInterval;
    std::size_t metricsCapacity = obs::Telemetry::defaultCapacity;
    std::string openmetricsOut; ///< OpenMetrics exposition path
    std::string postmortemDir;  ///< bundle directory on error stops
    std::string recordOut;      ///< "fpc-record-v1" recording path
    std::vector<std::string> probeSpecs; ///< --probe= one-liners
    std::string probeOut;       ///< "fpc-probes-v1" document path
};

void
printUsage(std::ostream &os, const char *argv0)
{
    os << "usage: " << argv0
       << " [options] <file.mm> [int args...]\n"
          "  --impl=simple|mesa|ifu|banked   machine (default mesa)\n"
          "  --linkage=fat|mesa|direct       binding (default mesa)\n"
          "  --short-calls                   use SHORTDIRECTCALL\n"
          "  --banks=N                       register banks (I4)\n"
          "  --timeslice=N                   preempt every N "
          "instructions\n"
          "  --entry=Mod.proc                entry point\n"
          "  --stats                         dump machine statistics\n"
          "  --accel=on|off|threaded         host backend: burst, off, "
          "or threaded-code\n"
          "                                  superblocks (simulated "
          "numbers are identical\n"
          "                                  in every mode; default "
          "on)\n"
          "  --accel-stats                   dump host cache counters\n"
          "  --disasm                        dump the loaded code\n"
          "  --trace-out=FILE                write a Chrome/Perfetto "
          "XFER trace\n"
          "  --trace-capacity=N              trace ring size (default "
       << obs::Tracer::defaultCapacity
       << ")\n"
          "  --profile                       per-procedure cycle "
          "profile\n"
          "  --profile-top=N                 profile rows to print "
          "(default 20)\n"
          "  --profile-folded=FILE           write folded stacks "
          "(flamegraph.pl)\n"
          "  --profile-sampled               sampled (accel-safe) "
          "profile: boundary\n"
          "                                  samples instead of exact "
          "XFER observation,\n"
          "                                  so --accel fast paths "
          "keep running\n"
          "  --sample-interval=N             cycles between boundary "
          "samples (default\n"
          "                                  9973; prime to avoid "
          "loop aliasing)\n"
          "  --telemetry-mode=exact|sampled  exact: cycle-precise "
          "sampler (forces the\n"
          "                                  eager loop; default). "
          "sampled: bounded-slop\n"
          "                                  boundary samples, accel "
          "fast paths kept\n"
          "  --stats-json=FILE               write statistics as JSON\n"
          "  --metrics-out=FILE              write a fpc-metrics-v1 "
          "time series\n"
          "  --metrics-interval=N            cycles between samples "
          "(default "
       << obs::Telemetry::defaultInterval
       << ")\n"
          "  --metrics-capacity=N            metrics ring size "
          "(default "
       << obs::Telemetry::defaultCapacity
       << ")\n"
          "  --openmetrics-out=FILE          write the series as "
          "OpenMetrics text\n"
          "  --postmortem-dir=DIR            write a postmortem bundle "
          "on error stops\n"
          "  --record-out=FILE               write an fpc-record-v1 "
          "recording (fpcreplay)\n"
          "  --probe=SPEC                    attach a dynamic probe "
          "(repeatable); e.g.\n"
          "                                  'entry:Mod.proc"
          "{depth<=4} -> quantize(cycles)'\n"
          "                                  zero simulated cost; "
          "accel backends deopt only\n"
          "                                  the probed procedures\n"
          "  --probe-out=FILE                write probe aggregations "
          "as fpc-probes-v1\n"
          "  --log-level=error|warn|info|debug  stderr verbosity "
          "(default info)\n"
          "  --help                          show this help\n";
}

[[noreturn]] void
usage(const char *argv0)
{
    printUsage(std::cerr, argv0);
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const std::string &prefix) {
            return arg.substr(prefix.size());
        };
        if (arg.rfind("--impl=", 0) == 0) {
            const std::string v = value("--impl=");
            if (v == "simple")
                opt.impl = Impl::Simple;
            else if (v == "mesa")
                opt.impl = Impl::Mesa;
            else if (v == "ifu")
                opt.impl = Impl::Ifu;
            else if (v == "banked")
                opt.impl = Impl::Banked;
            else
                usage(argv[0]);
        } else if (arg.rfind("--linkage=", 0) == 0) {
            const std::string v = value("--linkage=");
            if (v == "fat")
                opt.lowering = CallLowering::Fat;
            else if (v == "mesa")
                opt.lowering = CallLowering::Mesa;
            else if (v == "direct")
                opt.lowering = CallLowering::Direct;
            else
                usage(argv[0]);
        } else if (arg == "--short-calls") {
            opt.shortCalls = true;
        } else if (arg.rfind("--banks=", 0) == 0) {
            opt.banks = std::stoul(value("--banks="));
        } else if (arg.rfind("--timeslice=", 0) == 0) {
            opt.timeslice = std::stoull(value("--timeslice="));
        } else if (arg.rfind("--entry=", 0) == 0) {
            const std::string v = value("--entry=");
            const auto dot = v.find('.');
            if (dot == std::string::npos)
                usage(argv[0]);
            opt.entryModule = v.substr(0, dot);
            opt.entryProc = v.substr(dot + 1);
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (arg.rfind("--accel=", 0) == 0) {
            const std::string v = value("--accel=");
            if (v == "on") {
                opt.accel = true;
            } else if (v == "off") {
                opt.accel = false;
            } else if (v == "threaded") {
                if (!Machine::threadedSupported()) {
                    std::cerr << argv[0]
                              << ": --accel=threaded is not supported "
                                 "by this build (needs the computed-"
                                 "goto extension)\n";
                    std::exit(2);
                }
                opt.accel = true;
                opt.threaded = true;
            } else {
                usage(argv[0]);
            }
        } else if (arg == "--accel-stats") {
            opt.accelStats = true;
        } else if (arg == "--disasm") {
            opt.disasm = true;
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            opt.traceOut = value("--trace-out=");
        } else if (arg.rfind("--trace-capacity=", 0) == 0) {
            opt.traceCapacity = std::stoull(value("--trace-capacity="));
        } else if (arg == "--profile") {
            opt.profile = true;
        } else if (arg.rfind("--profile-top=", 0) == 0) {
            opt.profile = true;
            opt.profileTop = std::stoul(value("--profile-top="));
        } else if (arg.rfind("--profile-folded=", 0) == 0) {
            opt.profileFolded = value("--profile-folded=");
        } else if (arg == "--profile-sampled") {
            opt.profileSampled = true;
        } else if (arg.rfind("--sample-interval=", 0) == 0) {
            opt.sampleInterval =
                std::stoull(value("--sample-interval="));
        } else if (arg.rfind("--telemetry-mode=", 0) == 0) {
            const std::string v = value("--telemetry-mode=");
            if (v == "exact")
                opt.telemetrySampled = false;
            else if (v == "sampled")
                opt.telemetrySampled = true;
            else
                usage(argv[0]);
        } else if (arg.rfind("--stats-json=", 0) == 0) {
            opt.statsJson = value("--stats-json=");
        } else if (arg.rfind("--metrics-out=", 0) == 0) {
            opt.metricsOut = value("--metrics-out=");
        } else if (arg.rfind("--metrics-interval=", 0) == 0) {
            opt.metricsInterval =
                std::stoull(value("--metrics-interval="));
        } else if (arg.rfind("--metrics-capacity=", 0) == 0) {
            opt.metricsCapacity =
                std::stoull(value("--metrics-capacity="));
        } else if (arg.rfind("--openmetrics-out=", 0) == 0) {
            opt.openmetricsOut = value("--openmetrics-out=");
        } else if (arg.rfind("--postmortem-dir=", 0) == 0) {
            opt.postmortemDir = value("--postmortem-dir=");
        } else if (arg.rfind("--record-out=", 0) == 0) {
            opt.recordOut = value("--record-out=");
        } else if (arg.rfind("--probe=", 0) == 0) {
            opt.probeSpecs.push_back(value("--probe="));
        } else if (arg.rfind("--probe-out=", 0) == 0) {
            opt.probeOut = value("--probe-out=");
        } else if (arg.rfind("--log-level=", 0) == 0) {
            LogLevel level;
            if (!parseLogLevel(value("--log-level="), level))
                usage(argv[0]);
            setLogLevel(level);
        } else if (arg == "--help") {
            printUsage(std::cout, argv[0]);
            std::exit(0);
        } else if (arg.rfind("--", 0) == 0) {
            usage(argv[0]);
        } else if (opt.file.empty()) {
            opt.file = arg;
        } else {
            opt.args.push_back(
                static_cast<Word>(std::stol(arg) & 0xFFFF));
        }
    }
    if (opt.file.empty())
        usage(argv[0]);
    // A folded path alone keeps its historical meaning (exact
    // profile); with --profile-sampled it exports the sampled one.
    if (!opt.profileFolded.empty() && !opt.profileSampled)
        opt.profile = true;
    if (opt.telemetrySampled && !opt.recordOut.empty()) {
        std::cerr << argv[0]
                  << ": --telemetry-mode=sampled cannot be combined "
                     "with --record-out (replay requires the exact "
                     "sampler chain)\n";
        std::exit(2);
    }
    return opt;
}

void
dumpDisassembly(const LoadedImage &image, Memory &mem)
{
    for (const PlacedModule &pm : image.modules()) {
        std::cout << "module " << pm.src->name << "  (code "
                  << pm.segBytes << " bytes, "
                  << callLoweringName(pm.lowering) << " linkage, "
                  << pm.lvCount << " LV slots)\n";
        for (unsigned p = 0; p < pm.procs.size(); ++p) {
            const PlacedProc &pp = pm.procs[p];
            std::cout << "  proc " << pm.src->procs[p].name
                      << "  (fsi " << pp.fsi << ", frame "
                      << image.classes().classWords(pp.fsi)
                      << " words)\n";
            std::vector<std::uint8_t> bytes;
            for (unsigned i = 0; i < pp.bodyBytes; ++i)
                bytes.push_back(mem.peekByte(pp.prologueAddr +
                                             pp.prologueBytes + i));
            for (const auto &line : isa::disassemble(bytes))
                std::cout << "    " << line.offset << ":\t"
                          << line.text << "\n";
        }
    }
}

void
dumpStats(const Machine &machine, const Memory &mem)
{
    const MachineStats &s = machine.stats();
    std::cout << "\n--- statistics ---\n"
              << "instructions: " << s.steps
              << "   cycles: " << s.cycles
              << "   storage refs: " << mem.totalRefs() << "\n";

    stats::Table table({"transfer", "count", "fast", "mean refs",
                        "mean cycles"});
    for (unsigned k = 0; k < MachineStats::numXferKinds; ++k) {
        if (s.xferCount[k] == 0)
            continue;
        table.row(xferKindName(static_cast<XferKind>(k)),
                  s.xferCount[k], s.xferFast[k],
                  stats::fixed(s.xferRefs[k].mean(), 2),
                  stats::fixed(s.xferCycles[k].mean(), 1));
    }
    table.print(std::cout);
    std::cout << "jump-speed calls+returns: "
              << stats::percent(s.fastCallReturnRate()) << "\n";
    if (machine.config().impl == Impl::Banked) {
        std::cout << "bank overflows: " << s.bankOverflows
                  << "   underflows: " << s.bankUnderflows
                  << "   fast frame allocs: " << s.fastFrameAllocs
                  << "/" << s.fastFrameAllocs + s.slowFrameAllocs
                  << "\n";
    }
    if (machine.config().impl == Impl::Ifu ||
        machine.config().impl == Impl::Banked) {
        std::cout << "return stack hits: " << s.returnStackHits
                  << "   misses: " << s.returnStackMisses
                  << "   spills: " << s.returnStackSpills << "\n";
    }
    if (machine.config().timesliceSteps > 0) {
        std::cout << "timeslice: " << machine.config().timesliceSteps
                  << " instructions   preemptions: " << s.preemptions
                  << "\n";
    }
}

void
dumpAccelStats(const Machine &machine)
{
    std::cout << "\n--- host acceleration ---\n";
    if (!machine.accelEnabled()) {
        std::cout << "disabled (--accel=off)\n";
        return;
    }
    const AccelStats a = machine.accelStats();
    std::cout << "icache: " << a.icacheHits << " hits, "
              << a.icacheMisses << " misses ("
              << stats::percent(a.icacheHitRate()) << ")\n"
              << "link cache: " << a.linkHits() << " hits, "
              << a.linkMisses() << " misses ("
              << stats::percent(a.linkHitRate()) << ")\n"
              << "flushes: " << a.codeFlushes << " code, "
              << a.tableFlushes << " link\n";
    if (a.probeSites != 0 || a.probeEagerSteps != 0)
        std::cout << "probes: " << a.probeSites << " armed sites, "
                  << a.probeDeoptBlocks << " deopt blocks, "
                  << a.probeEagerSteps << " eager steps\n";
}

} // namespace

int
main(int argc, char **argv)
try {
    const Options opt = parseArgs(argc, argv);

    std::ifstream in(opt.file);
    if (!in) {
        error("fpcvm: cannot open {}", opt.file);
        return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string source = buffer.str();

    const auto modules = lang::compile(source);
    std::string entry = opt.entryModule;
    if (entry.empty()) {
        entry = modules.front().name;
        for (const auto &m : modules)
            if (m.name == "Main")
                entry = "Main";
    }

    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    for (const auto &m : modules)
        loader.add(m);
    LinkPlan plan;
    plan.lowering = opt.lowering;
    plan.shortCalls = opt.shortCalls;
    const LoadedImage image = loader.load(mem, plan);
    // Hash before the Machine exists: its FrameHeap constructor
    // rewrites the AV, and replay hashes at this same point.
    const std::uint64_t imageHash = opt.recordOut.empty()
                                        ? 0
                                        : replay::imageHash(mem, image);

    if (opt.disasm)
        dumpDisassembly(image, mem);

    MachineConfig config;
    config.impl = opt.impl;
    config.numBanks = opt.banks;
    config.timesliceSteps = opt.timeslice;
    config.accel.enabled = opt.accel;
    config.accel.threaded = opt.threaded;
    Machine machine(mem, image, config);

    // Observability: a tracer and/or profiler share the machine's one
    // observer slot through a fanout. Both are free when unused.
    obs::ProcMap procMap;
    obs::Tracer tracer(opt.traceCapacity);
    std::optional<obs::Profiler> profiler;
    obs::Fanout fanout;
    if (!opt.traceOut.empty()) {
        procMap = obs::ProcMap(image);
        tracer.setProcMap(&procMap);
        fanout.add(&tracer);
    }
    if (opt.profile) {
        profiler.emplace(image);
        fanout.add(&*profiler);
    }
    obs::FlightRecorder recorder;
    if (!opt.postmortemDir.empty())
        fanout.add(&recorder);
    if (!fanout.empty())
        machine.setObserver(&fanout);

    const bool metricsWanted =
        !opt.metricsOut.empty() || !opt.openmetricsOut.empty();
    const bool telemetryWanted =
        metricsWanted || !opt.postmortemDir.empty();
    obs::Telemetry telemetry(opt.metricsCapacity);
    // The replay recorder takes the machine's one sampler slot and
    // chains the telemetry sampler behind it, so both fire on the
    // same simulated-cycle boundaries.
    replay::Recorder replayRec;
    if (!opt.recordOut.empty()) {
        replayRec.beginJob(0, 0);
        if (telemetryWanted)
            replayRec.setNext(&telemetry);
        machine.setSampler(&replayRec, opt.metricsInterval);
    } else if (telemetryWanted && !opt.telemetrySampled) {
        machine.setSampler(&telemetry, opt.metricsInterval);
    }

    // Sampled (accel-safe) observability rides the boundary-sample
    // slot: the accel fast paths keep running and sample stamps obey
    // the bounded-slop contract (machine/machine.hh).
    std::optional<obs::SampledProfiler> sampledProfiler;
    obs::BoundaryFanout boundaryFan;
    if (opt.profileSampled) {
        sampledProfiler.emplace(image);
        boundaryFan.add(&*sampledProfiler, opt.sampleInterval);
    }
    if (telemetryWanted && opt.telemetrySampled)
        boundaryFan.add(&telemetry, opt.metricsInterval);
    if (!boundaryFan.empty())
        machine.setBoundarySampler(&boundaryFan,
                                   boundaryFan.machineInterval());

    // Exact observation forces the eager loop: say so once, up
    // front, rather than letting an accelerated run silently lose
    // its speedup.
    const bool forcesEager =
        !opt.traceOut.empty() || opt.profile ||
        !opt.postmortemDir.empty() || !opt.recordOut.empty() ||
        (telemetryWanted && !opt.telemetrySampled);
    if (opt.accel && forcesEager) {
        warn("fpcvm: exact observation (--profile/--trace-out/"
             "--record-out/--postmortem-dir/exact metrics) forces the "
             "eager loop; --accel={} keeps only its XFER caches. Use "
             "--profile-sampled / --telemetry-mode=sampled to keep "
             "the fast path",
             opt.threaded ? "threaded" : "on");
    }

    // Dynamic probes: zero simulated cost and accel-safe (only the
    // armed procedures deoptimize), so they are deliberately absent
    // from forcesEager above.
    obs::ProbeRegistry probeRegistry;
    std::optional<obs::ProbeEngine> probeEngine;
    if (!opt.probeSpecs.empty()) {
        std::string perr;
        if (!obs::attachProbeSpecs(probeRegistry, opt.probeSpecs,
                                   perr)) {
            error("fpcvm: {}", perr);
            return 2;
        }
        probeEngine.emplace(probeRegistry.snapshot(), image,
                            "default", 0);
        machine.setProbeSink(&*probeEngine,
                             probeEngine->armedRanges());
    }

    if (opt.timeslice > 0) {
        // Single program, so every expired slice switches the process
        // to itself — still a full ProcSwitch XFER through the engine.
        Machine::Scheduler policy =
            [](Machine &m) { return m.currentFrameContext(); };
        if (!opt.recordOut.empty())
            policy = replayRec.wrapPolicy(std::move(policy));
        machine.setScheduler(std::move(policy));
    }
    machine.start(entry, opt.entryProc, opt.args);
    // Bracket the run: even programs shorter than one interval export
    // a start and a final point.
    if (!opt.recordOut.empty())
        replayRec.sample(machine);
    if (telemetryWanted)
        telemetry.sample(machine);
    const RunResult result = machine.run();
    if (!opt.recordOut.empty())
        replayRec.finish(machine, result); // before popValue below
    if (telemetryWanted)
        telemetry.sample(machine);

    if (probeEngine) {
        machine.setProbeSink(nullptr);
        probeEngine->finishInto(probeRegistry);
    }

    for (const Word v : machine.output())
        std::cout << static_cast<SWord>(v) << "\n";

    int exit_code = 0;
    if (result.reason == StopReason::TopReturn) {
        std::cout << "=> "
                  << static_cast<SWord>(machine.popValue()) << "\n";
    } else if (result.reason != StopReason::Halted) {
        error("fpcvm: {}: {}", stopReasonName(result.reason),
              result.message);
        exit_code = 1;
        if (!opt.postmortemDir.empty()) {
            obs::PostmortemConfig pm;
            pm.dir = opt.postmortemDir;
            pm.driver = "fpcvm";
            pm.impl = implName(config.impl);
            if (obs::writePostmortem(pm, machine, result, image,
                                     recorder, &telemetry)) {
                inform("fpcvm: postmortem bundle written to {}",
                       opt.postmortemDir);
            }
        }
    }

    if (opt.stats)
        dumpStats(machine, mem);
    if (opt.accelStats)
        dumpAccelStats(machine);

    // Artifacts are written even when the program stopped on an error:
    // a trace of a failing run is the one you want to look at.
    if (!opt.traceOut.empty()) {
        std::ofstream out(opt.traceOut);
        if (!out) {
            error("fpcvm: cannot write {}", opt.traceOut);
            return 1;
        }
        obs::writeChromeTrace(out, tracer);
        if (tracer.dropped() > 0)
            warn("fpcvm: trace ring dropped {} of {} events (raise "
                 "--trace-capacity)",
                 tracer.dropped(), tracer.recorded());
    }
    if (profiler) {
        const obs::ProfileData data =
            profiler->finish(machine.cycles());
        std::cout << "\n--- profile (top " << opt.profileTop
                  << " by exclusive cycles) ---\n";
        data.topTable(opt.profileTop).print(std::cout);
        if (!opt.profileFolded.empty()) {
            std::ofstream out(opt.profileFolded);
            if (!out) {
                error("fpcvm: cannot write {}", opt.profileFolded);
                return 1;
            }
            data.writeFolded(out);
        }
    }
    if (sampledProfiler) {
        const obs::SampledProfile data = sampledProfiler->finish();
        std::cout << "\n--- sampled profile (top " << opt.profileTop
                  << " by samples, interval " << opt.sampleInterval
                  << " cycles) ---\n";
        data.topTable(opt.profileTop).print(std::cout);
        if (!opt.profileFolded.empty() && !opt.profile) {
            std::ofstream out(opt.profileFolded);
            if (!out) {
                error("fpcvm: cannot write {}", opt.profileFolded);
                return 1;
            }
            data.writeFolded(out);
        }
    }
    if (!opt.probeOut.empty()) {
        std::ofstream out(opt.probeOut);
        if (!out) {
            error("fpcvm: cannot write {}", opt.probeOut);
            return 1;
        }
        probeRegistry.writeJson(out, "fpcvm");
    }
    if (!opt.statsJson.empty()) {
        std::ofstream out(opt.statsJson);
        if (!out) {
            error("fpcvm: cannot write {}", opt.statsJson);
            return 1;
        }
        obs::StatsExport exp;
        exp.driver = "fpcvm";
        exp.impl = implName(config.impl);
        exp.stopReason = stopReasonName(result.reason);
        exp.machine = &machine.stats();
        exp.memory = &mem;
        exp.heap = &machine.heap().stats();
        exp.cache = machine.dataCache();
        // Host counters only on request: the default document must be
        // byte-identical with acceleration on or off.
        AccelStats accel_counters;
        if (opt.accelStats) {
            accel_counters = machine.accelStats();
            exp.accel = &accel_counters;
        }
        obs::writeStatsJson(out, exp);
    }
    if (metricsWanted) {
        obs::MetricsExport meta;
        meta.driver = "fpcvm";
        meta.impl = implName(config.impl);
        meta.interval = opt.metricsInterval;
        // Host hit rates only on request, like --accel-stats: the
        // default series must be byte-identical with --accel=on|off.
        // Sampled series are not byte-identical across the switch
        // anyway (their purpose is observing accelerated runs), so
        // there the accel gauges flow by default.
        meta.includeAccel = opt.accelStats || opt.telemetrySampled;
        if (!opt.metricsOut.empty()) {
            std::ofstream out(opt.metricsOut);
            if (!out) {
                error("fpcvm: cannot write {}", opt.metricsOut);
                return 1;
            }
            obs::writeMetricsJson(out, meta, telemetry);
            if (telemetry.dropped() > 0)
                warn("fpcvm: metrics ring dropped {} of {} samples "
                     "(raise --metrics-capacity)",
                     telemetry.dropped(), telemetry.recorded());
        }
        if (!opt.openmetricsOut.empty()) {
            std::ofstream out(opt.openmetricsOut);
            if (!out) {
                error("fpcvm: cannot write {}", opt.openmetricsOut);
                return 1;
            }
            obs::writeOpenMetrics(out, meta, telemetry);
        }
    }
    if (!opt.recordOut.empty()) {
        replay::RecordLog log;
        log.impl = opt.impl;
        log.lowering = opt.lowering;
        log.shortCalls = opt.shortCalls;
        log.banks = opt.banks;
        log.timeslice = opt.timeslice;
        log.accel = opt.accel;
        log.interval = opt.metricsInterval;
        log.workers = 1;
        log.stride = 1;
        log.imageHash = imageHash;
        log.entryModule = entry;
        log.entryProc = opt.entryProc;
        log.args = opt.args;
        log.source = source;
        log.jobs.push_back(replayRec.takeJob());
        std::ofstream out(opt.recordOut);
        if (!out) {
            error("fpcvm: cannot write {}", opt.recordOut);
            return 1;
        }
        replay::writeRecord(out, log);
    }
    return exit_code;
} catch (const std::exception &err) {
    error("fpcvm: {}", err.what());
    return 1;
}
